//===- fuzz/Oracle.cpp - Differential interpreter oracle ----------------------===//

#include "fuzz/Oracle.h"
#include "analysis/DominatorTree.h"
#include "support/Stats.h"
#include "analysis/LoopInfo.h"
#include "baseline/ClassicalIV.h"
#include "frontend/Lowering.h"
#include "interp/Interpreter.h"
#include "ivclass/InductionAnalysis.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include "ssa/SSAVerifier.h"
#include "support/Lcg.h"
#include <sstream>

using namespace biv;
using namespace biv::fuzz;

std::string Mismatch::str() const {
  std::string S = Check + " mismatch";
  if (!Loop.empty())
    S += " in " + Loop;
  if (!Value.empty())
    S += " on " + Value;
  S += ": claimed " + Claim + "; observed " + Observed;
  return S;
}

namespace {

/// Renders the first elements of an observed sequence.
std::string renderSeq(const std::vector<int64_t> &Seq, size_t Limit = 12) {
  std::ostringstream OS;
  OS << "[";
  for (size_t K = 0; K < Seq.size() && K < Limit; ++K)
    OS << (K ? ", " : "") << Seq[K];
  if (Seq.size() > Limit)
    OS << ", ... (" << Seq.size() << " values)";
  OS << "]";
  return OS.str();
}

/// Binds affine symbols to runtime values: arguments to the run's argument
/// vector, loop-external instructions to their observed value when they
/// executed exactly once (so the binding is unambiguous).
class SymbolEnv {
public:
  SymbolEnv(const ir::Function &F, const std::vector<int64_t> &Args,
            const interp::ExecutionTrace &Trace)
      : Trace(Trace) {
    for (const ir::Argument *A : F.arguments())
      ArgValues[A] = Args[A->index()];
  }

  /// Evaluates \p V; nullopt when a symbol has no unambiguous binding or
  /// the result is not an integer.
  std::optional<int64_t> eval(const Affine &V) const {
    Rational R = V.constantPart();
    for (const auto &[Sym, Coeff] : V.terms()) {
      const auto *Val = static_cast<const ir::Value *>(Sym);
      auto It = ArgValues.find(Val);
      if (It != ArgValues.end()) {
        R += Coeff * Rational(It->second);
        continue;
      }
      const auto *I = ir::dyn_cast<ir::Instruction>(Val);
      if (!I)
        return std::nullopt;
      const std::vector<int64_t> &Seq = Trace.sequenceOf(I);
      if (Seq.size() != 1)
        return std::nullopt;
      R += Coeff * Rational(Seq[0]);
    }
    if (!R.isInteger())
      return std::nullopt;
    return R.getInteger();
  }

private:
  const interp::ExecutionTrace &Trace;
  std::map<const ir::Value *, int64_t> ArgValues;
};

/// One oracle run's working state.
class OracleRun {
public:
  OracleRun(const std::string &Source, const OracleOptions &Opts)
      : Source(Source), Opts(Opts) {}

  OracleResult run();

private:
  void mismatch(std::string Check, std::string Loop, std::string Value,
                std::string Claim, std::string Observed) {
    Result.Mismatches.push_back({std::move(Check), std::move(Loop),
                                 std::move(Value), std::move(Claim),
                                 std::move(Observed)});
  }

  void checkBehavior(const interp::ExecutionTrace &Ref,
                     const interp::ExecutionTrace &Post);
  void checkLoopClaims(ivclass::InductionAnalysis &IA,
                       const analysis::Loop *L,
                       const interp::ExecutionTrace &Post,
                       const SymbolEnv &Env);
  void checkClosedForm(ivclass::InductionAnalysis &IA,
                       const ivclass::Classification &C,
                       const std::string &LoopName, const std::string &Name,
                       const std::vector<int64_t> &Seq, const SymbolEnv &Env);
  void checkWrapAround(ivclass::InductionAnalysis &IA,
                       const ivclass::Classification &C,
                       const std::string &LoopName, const std::string &Name,
                       const std::vector<int64_t> &Seq, const SymbolEnv &Env);
  void checkPeriodic(ivclass::InductionAnalysis &IA,
                     const ivclass::Classification &C,
                     const std::string &LoopName, const std::string &Name,
                     const std::vector<int64_t> &Seq, const SymbolEnv &Env);
  void checkMonotonic(const ivclass::Classification &C,
                      const std::string &LoopName, const std::string &Name,
                      const std::vector<int64_t> &Seq);
  void checkPhasePeriodic(ivclass::InductionAnalysis &IA,
                          const ivclass::Classification &C,
                          const std::string &LoopName, const std::string &Name,
                          const std::vector<int64_t> &Seq,
                          const SymbolEnv &Env);
  void checkMemberClaims(ivclass::InductionAnalysis &IA,
                         const analysis::DominatorTree &DT,
                         const analysis::Loop *L,
                         const interp::ExecutionTrace &Post,
                         const SymbolEnv &Env);
  void checkTripCount(ivclass::InductionAnalysis &IA,
                      const analysis::Loop *L,
                      const interp::ExecutionTrace &Post,
                      const SymbolEnv &Env);
  void checkBaseline(ivclass::InductionAnalysis &IA, const analysis::Loop *L);

  const std::string &Source;
  const OracleOptions &Opts;
  OracleResult Result;
};

OracleResult OracleRun::run() {
  // Reference build: parse -> SSA only, no analysis-side IR mutation.
  std::vector<std::string> Errors;
  std::unique_ptr<ir::Function> FRef =
      frontend::parseAndLower(Source, Errors);
  if (!FRef) {
    Result.ParseOK = false;
    Result.FrontendErrors = std::move(Errors);
    return std::move(Result);
  }
  ssa::buildSSA(*FRef);

  // Argument vector sized to the function, padded deterministically.
  std::vector<int64_t> Args = Opts.Args;
  if (Args.size() < FRef->arguments().size())
    Args.resize(FRef->arguments().size(), Args.empty() ? 6 : Args.back());

  // Seed array A with mixed signs so conditional paths both execute.
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Arrays;
  {
    Lcg R(Opts.ArraySeed * 77 + 1);
    for (int64_t I = -32; I <= 64; ++I)
      Arrays["A"][{I}] = R.range(-5, 8);
  }

  interp::ExecOptions EO;
  EO.MaxSteps = Opts.MaxSteps;
  interp::ExecutionTrace Ref = interp::runWithArrays(*FRef, Args, Arrays, EO);
  if (!Ref.ok()) {
    mismatch("execution", "", "",
             "program executes within budget",
             Ref.HitStepLimit ? "step limit hit" : Ref.Error);
    return std::move(Result);
  }

  // Analyzed build: the full pipeline, with every IR mutation on (SCCP
  // folding plus exit-value materialization) -- exactly what the paper's
  // client transformations would consume.
  std::unique_ptr<ir::Function> F = frontend::parseAndLower(Source, Errors);
  if (!F) {
    Result.ParseOK = false;
    Result.FrontendErrors = std::move(Errors);
    return std::move(Result);
  }
  ssa::buildSSA(*F);
  ssa::verifySSAOrDie(*F);
  ssa::runSCCP(*F, /*SimplifyCFG=*/false);
  ssa::verifySSAOrDie(*F);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ivclass::InductionAnalysis::Options AO;
  AO.Summarize = Opts.Summarize;
  ivclass::InductionAnalysis IA(*F, DT, LI, AO);
  IA.run();
  ssa::verifySSAOrDie(*F);

  interp::ExecutionTrace Post = interp::runWithArrays(*F, Args, Arrays, EO);
  if (!Post.ok()) {
    mismatch("execution", "", "",
             "analyzed program executes within budget",
             Post.HitStepLimit ? "step limit hit" : Post.Error);
    return std::move(Result);
  }

  checkBehavior(Ref, Post);

  SymbolEnv Env(*F, Args, Post);
  for (const auto &L : LI.loops()) {
    if (L->depth() == 1) {
      checkLoopClaims(IA, L.get(), Post, Env);
      checkMemberClaims(IA, DT, L.get(), Post, Env);
      checkTripCount(IA, L.get(), Post, Env);
    }
    if (Opts.CheckBaseline)
      checkBaseline(IA, L.get());
  }
  return std::move(Result);
}

void OracleRun::checkBehavior(const interp::ExecutionTrace &Ref,
                              const interp::ExecutionTrace &Post) {
  ++Result.Checks.Behavior;
  if (Ref.ReturnValue != Post.ReturnValue) {
    mismatch("behavior", "", "", "analysis preserves the return value",
             "ref returned " +
                 (Ref.ReturnValue ? std::to_string(*Ref.ReturnValue)
                                  : std::string("void")) +
                 ", analyzed returned " +
                 (Post.ReturnValue ? std::to_string(*Post.ReturnValue)
                                   : std::string("void")));
    return;
  }
  if (Ref.Accesses.size() != Post.Accesses.size()) {
    mismatch("behavior", "", "", "analysis preserves the array access log",
             std::to_string(Ref.Accesses.size()) + " accesses vs " +
                 std::to_string(Post.Accesses.size()));
    return;
  }
  for (size_t K = 0; K < Ref.Accesses.size(); ++K) {
    const interp::ArrayAccess &A = Ref.Accesses[K];
    const interp::ArrayAccess &B = Post.Accesses[K];
    if (A.A->name() != B.A->name() || A.Indices != B.Indices ||
        A.IsWrite != B.IsWrite) {
      mismatch("behavior", "", std::string(A.A->name()),
               "analysis preserves the array access log",
               "access #" + std::to_string(K) + " differs");
      return;
    }
  }
}

void OracleRun::checkLoopClaims(ivclass::InductionAnalysis &IA,
                                const analysis::Loop *L,
                                const interp::ExecutionTrace &Post,
                                const SymbolEnv &Env) {
  for (ir::Instruction *Phi : L->header()->phis()) {
    const ivclass::Classification &C = IA.classify(Phi, L);
    const std::vector<int64_t> &Seq = Post.sequenceOf(Phi);
    if (Seq.size() < 2)
      continue;
    // Value claims hold over Z; once the run wraps int64 they are
    // unfalsifiable by this execution, so skip (see ClaimValueBound).
    bool Wrapped = false;
    for (int64_t V : Seq)
      if (V > Opts.ClaimValueBound || V < -Opts.ClaimValueBound) {
        Wrapped = true;
        break;
      }
    if (Wrapped)
      continue;
    const std::string Name(Phi->name());
    // Claim evaluation runs in exact rational arithmetic; the sequence
    // bound above limits observed values, but symbols bound by Env (values
    // computed once outside the checked loop) can still be arbitrarily
    // large wrapped int64s, so exact evaluation may overflow.  Like a
    // wrapped sequence, that makes the claim unfalsifiable on this run.
    try {
      if (C.hasClosedForm())
        checkClosedForm(IA, C, L->name(), Name, Seq, Env);
      else if (C.isWrapAround())
        checkWrapAround(IA, C, L->name(), Name, Seq, Env);
      else if (C.isPeriodic())
        checkPeriodic(IA, C, L->name(), Name, Seq, Env);
      else if (C.isMonotonic())
        checkMonotonic(C, L->name(), Name, Seq);
      else if (C.isPhasePeriodic())
        checkPhasePeriodic(IA, C, L->name(), Name, Seq, Env);
    } catch (const RationalOverflow &) {
      static const stats::Counter NumOverflowSkips(
          "fuzz.check.overflow_skips");
      NumOverflowSkips.bump();
    }
  }
}

void OracleRun::checkClosedForm(ivclass::InductionAnalysis &IA,
                                const ivclass::Classification &C,
                                const std::string &LoopName,
                                const std::string &Name,
                                const std::vector<int64_t> &Seq,
                                const SymbolEnv &Env) {
  bool Checked = false;
  for (size_t H = 0; H < Seq.size(); ++H) {
    std::optional<int64_t> Expected = Env.eval(C.Form.evaluateAt(H));
    if (!Expected)
      return; // unbound symbol: claim not checkable on this run
    if (C.Kind == ivclass::IVKind::Linear)
      *Expected += Opts.InjectLinearSkew * int64_t(H);
    Checked = true;
    if (*Expected != Seq[H]) {
      mismatch("closed-form", LoopName, Name, IA.strNested(C),
               renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                   " at h=" + std::to_string(H) + ", form gives " +
                   std::to_string(*Expected) + ")");
      return;
    }
  }
  // The c-finite extension (polynomial coefficients on exponential terms)
  // counts as its own category so campaigns can assert it keeps firing.
  if (C.Form.hasPolyExponential())
    Result.Checks.CFinite += Checked;
  else
    Result.Checks.ClosedForm += Checked;
}

void OracleRun::checkMemberClaims(ivclass::InductionAnalysis &IA,
                                  const analysis::DominatorTree &DT,
                                  const analysis::Loop *L,
                                  const interp::ExecutionTrace &Post,
                                  const SymbolEnv &Env) {
  // Claims about non-phi region members whose exact form was projected out
  // of an unsolvable region (the Partial flag).  A member's history aligns
  // with the iteration counter only when its block runs on every iteration,
  // so require the block to dominate the (unique) latch; iterations execute
  // in order, so the observed sequence is then exactly member(0), member(1),
  // ... whatever its length (the final header visit may or may not reach
  // the block).
  if (L->latches().size() != 1 || L->header()->phis().empty())
    return;
  const ir::BasicBlock *Latch = L->latches().front();
  if (Post.sequenceOf(L->header()->phis()[0]).size() < 2)
    return;
  const analysis::LoopInfo &LI = IA.loopInfo();
  for (ir::BasicBlock *BB : L->blocks()) {
    if (LI.loopFor(BB) != L || !DT.dominates(BB, Latch))
      continue;
    for (const ir::Instruction *I : *BB) {
      if (I->isPhi() || I->isTerminator() || I->hasSideEffects())
        continue;
      const ivclass::Classification &C = IA.classify(I, L);
      if (!C.Partial || !C.hasClosedForm())
        continue;
      const std::vector<int64_t> &Seq = Post.sequenceOf(I);
      if (Seq.empty())
        continue;
      // Same int64-wrap guard as the header-phi claims.
      bool Wrapped = false;
      for (int64_t V : Seq)
        if (V > Opts.ClaimValueBound || V < -Opts.ClaimValueBound) {
          Wrapped = true;
          break;
        }
      if (Wrapped)
        continue;
      try {
        bool Checked = false;
        bool Failed = false;
        for (size_t H = 0; H < Seq.size() && !Failed; ++H) {
          std::optional<int64_t> Expected = Env.eval(C.Form.evaluateAt(H));
          if (!Expected) {
            Checked = false;
            break; // unbound symbol: not checkable on this run
          }
          Checked = true;
          if (*Expected != Seq[H]) {
            mismatch("partial", L->name(), std::string(I->name()),
                     IA.strNested(C),
                     renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                         " at h=" + std::to_string(H) + ", form gives " +
                         std::to_string(*Expected) + ")");
            Failed = true;
          }
        }
        Result.Checks.Partial += Checked;
      } catch (const RationalOverflow &) {
        static const stats::Counter NumOverflowSkips(
            "fuzz.check.overflow_skips");
        NumOverflowSkips.bump();
      }
    }
  }
}

void OracleRun::checkWrapAround(ivclass::InductionAnalysis &IA,
                                const ivclass::Classification &C,
                                const std::string &LoopName,
                                const std::string &Name,
                                const std::vector<int64_t> &Seq,
                                const SymbolEnv &Env) {
  const ivclass::Classification *Inner = C.Inner.get();
  if (!Inner || Seq.size() <= C.WrapOrder)
    return;
  // After `order` iterations the value follows the inner class, shifted:
  // phi(h) = inner(h - order).
  if (Inner->hasClosedForm()) {
    bool Checked = false;
    for (size_t H = C.WrapOrder; H < Seq.size(); ++H) {
      std::optional<int64_t> Expected =
          Env.eval(Inner->Form.evaluateAt(int64_t(H - C.WrapOrder)));
      if (!Expected)
        return;
      Checked = true;
      if (*Expected != Seq[H]) {
        mismatch("wrap-around", LoopName, Name, IA.strNested(C),
                 renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                     " at h=" + std::to_string(H) + ", inner form gives " +
                     std::to_string(*Expected) + ")");
        return;
      }
    }
    Result.Checks.WrapAround += Checked;
  } else if (Inner->isPeriodic() && !Inner->RingInits.empty()) {
    for (size_t H = C.WrapOrder; H < Seq.size(); ++H) {
      size_t Idx = (Inner->Phase + (H - C.WrapOrder)) % Inner->Period;
      std::optional<int64_t> Expected = Env.eval(Inner->RingInits[Idx]);
      if (!Expected)
        return;
      if (*Expected != Seq[H]) {
        mismatch("wrap-around", LoopName, Name, IA.strNested(C),
                 renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                     " at h=" + std::to_string(H) + ", inner ring gives " +
                     std::to_string(*Expected) + ")");
        return;
      }
    }
    ++Result.Checks.WrapAround;
  } else if (Inner->isPhasePeriodic() && Inner->Period >= 2 &&
             Inner->PhaseForms.size() == Inner->Period) {
    // Summarized reset variables land here: the solved per-phase forms
    // only cover cycles past the peeled prefix, so the whole tuple rides
    // behind a wrap-around whose order is a multiple of the period.
    bool Checked = false;
    for (size_t H = C.WrapOrder; H < Seq.size(); ++H) {
      const size_t HS = H - C.WrapOrder;
      std::optional<int64_t> Expected =
          Env.eval(Inner->PhaseForms[HS % Inner->Period].evaluateAt(
              int64_t(HS / Inner->Period)));
      if (!Expected)
        return;
      Checked = true;
      if (*Expected != Seq[H]) {
        mismatch("wrap-around", LoopName, Name, IA.strNested(C),
                 renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                     " at h=" + std::to_string(H) +
                     ", inner phase form gives " + std::to_string(*Expected) +
                     ")");
        return;
      }
    }
    Result.Checks.WrapAround += Checked;
  } else if (Inner->isMonotonic()) {
    std::vector<int64_t> Tail(Seq.begin() + C.WrapOrder, Seq.end());
    if (Tail.size() >= 2)
      checkMonotonic(*Inner, LoopName, Name, Tail);
  }
}

void OracleRun::checkPeriodic(ivclass::InductionAnalysis &IA,
                              const ivclass::Classification &C,
                              const std::string &LoopName,
                              const std::string &Name,
                              const std::vector<int64_t> &Seq,
                              const SymbolEnv &Env) {
  if (C.Period == 0 || C.RingInits.size() != C.Period)
    return;
  for (size_t H = 0; H < Seq.size(); ++H) {
    // value(h) = PScale * ring[(phase + h) mod p] + POffset.
    std::optional<int64_t> Member =
        Env.eval(C.RingInits[(C.Phase + H) % C.Period]);
    std::optional<int64_t> Offset = Env.eval(C.POffset);
    if (!Member || !Offset)
      return;
    Rational R = C.PScale * Rational(*Member) + Rational(*Offset);
    if (!R.isInteger())
      return;
    if (R.getInteger() != Seq[H]) {
      mismatch("periodic", LoopName, Name, IA.strNested(C),
               renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                   " at h=" + std::to_string(H) + ", ring gives " +
                   std::to_string(R.getInteger()) + ")");
      return;
    }
  }
  ++Result.Checks.Periodic;
}

void OracleRun::checkMonotonic(const ivclass::Classification &C,
                               const std::string &LoopName,
                               const std::string &Name,
                               const std::vector<int64_t> &Seq) {
  const char *DirName =
      C.Dir == ivclass::MonotoneDir::Increasing ? "increasing" : "decreasing";
  for (size_t K = 1; K < Seq.size(); ++K) {
    int64_t Prev = Seq[K - 1], Cur = Seq[K];
    bool OK = C.Dir == ivclass::MonotoneDir::Increasing
                  ? (C.Strict ? Prev < Cur : Prev <= Cur)
                  : (C.Strict ? Prev > Cur : Prev >= Cur);
    if (!OK) {
      mismatch("monotonic", LoopName, Name,
               std::string(C.Strict ? "strictly " : "") + DirName,
               renderSeq(Seq) + " (" + std::to_string(Prev) + " -> " +
                   std::to_string(Cur) + " at h=" + std::to_string(K) + ")");
      return;
    }
  }
  ++Result.Checks.Monotonic;
}

void OracleRun::checkPhasePeriodic(ivclass::InductionAnalysis &IA,
                                   const ivclass::Classification &C,
                                   const std::string &LoopName,
                                   const std::string &Name,
                                   const std::vector<int64_t> &Seq,
                                   const SymbolEnv &Env) {
  if (C.Period < 2 || C.PhaseForms.size() != C.Period)
    return;
  // value(h) = PhaseForms[h mod k] evaluated at cycle index c = h div k.
  bool Checked = false;
  for (size_t H = 0; H < Seq.size(); ++H) {
    const ivclass::ClosedForm &Form = C.PhaseForms[H % C.Period];
    std::optional<int64_t> Expected =
        Env.eval(Form.evaluateAt(int64_t(H / C.Period)));
    if (!Expected)
      return; // unbound symbol: claim not checkable on this run
    Checked = true;
    if (*Expected != Seq[H]) {
      mismatch("phase-periodic", LoopName, Name, IA.strNested(C),
               renderSeq(Seq) + " (value " + std::to_string(Seq[H]) +
                   " at h=" + std::to_string(H) + ", phase form gives " +
                   std::to_string(*Expected) + ")");
      return;
    }
  }
  Result.Checks.PhasePeriodic += Checked;
}

void OracleRun::checkTripCount(ivclass::InductionAnalysis &IA,
                               const analysis::Loop *L,
                               const interp::ExecutionTrace &Post,
                               const SymbolEnv &Env) {
  const ivclass::TripCountInfo &TC = IA.tripCount(L);
  ir::Instruction *AnyPhi =
      L->header()->phis().empty() ? nullptr : L->header()->phis()[0];
  if (!AnyPhi)
    return;
  int64_t Visits = int64_t(Post.sequenceOf(AnyPhi).size());
  if (Visits == 0)
    return; // loop never entered on this run

  try {
  if (TC.isCountable()) {
    std::optional<int64_t> Count = Env.eval(TC.count());
    if (!Count)
      return;
    // The trip count is the number of stay decisions; header phis are
    // evaluated tc + 1 times.  A guarded symbolic count only holds when
    // positive (otherwise the real count is zero).
    int64_t Expected = (TC.Guarded && *Count < 0) ? 0 : *Count;
    ++Result.Checks.TripCount;
    if (Visits != Expected + 1)
      mismatch("trip-count", L->name(), "",
               TC.str(IA.namer()) + " (expecting " +
                   std::to_string(Expected + 1) + " header visits)",
               std::to_string(Visits) + " header visits");
  } else if (TC.MaxCount) {
    std::optional<int64_t> Max = Env.eval(*TC.MaxCount);
    if (!Max)
      return;
    ++Result.Checks.TripCount;
    if (Visits - 1 > *Max)
      mismatch("trip-count", L->name(), "",
               "max trip count " + std::to_string(*Max),
               std::to_string(Visits - 1) + " observed stays");
  }
  } catch (const RationalOverflow &) {
    // Symbolic counts evaluated over wrapped runtime bindings can leave
    // int64 rationals; the claim is unfalsifiable on this run (see the
    // matching guard in checkLoopClaims).
    static const stats::Counter NumOverflowSkips("fuzz.check.overflow_skips");
    NumOverflowSkips.bump();
  }
}

void OracleRun::checkBaseline(ivclass::InductionAnalysis &IA,
                              const analysis::Loop *L) {
  baseline::ClassicalResult CR = baseline::runClassicalIV(*L);
  for (const auto &[V, IV] : CR.IVs) {
    (void)IV;
    // Compare only at L's own nesting level.  The classical phase-2 sweep
    // covers inner-loop blocks too (and exit-value materialization plants
    // per-outer-iteration recurrences there), where its per-iteration-of-L
    // view and the region-based unified classification legitimately
    // disagree in scope, not in fact.
    const auto *I = ir::dyn_cast<ir::Instruction>(V);
    if (I) {
      bool InSubloop = false;
      for (const analysis::Loop *Sub : L->subLoops())
        if (Sub->contains(I->parent())) {
          InSubloop = true;
          break;
        }
      if (InSubloop)
        continue;
    }
    ++Result.Checks.Baseline;
    const ivclass::Classification &C = IA.classify(V, L);
    if (!C.isLinear() && !C.isInvariant())
      mismatch("baseline", L->name(), std::string(V->name()),
               "unified analysis subsumes classical IVs",
               std::string("classical found a linear IV, unified says ") +
                   ivclass::ivKindName(C.Kind));
  }
}

} // namespace

OracleResult biv::fuzz::checkProgram(const std::string &Source,
                                     const OracleOptions &Opts) {
  static const stats::Timer OraclePhase("phase.oracle");
  static const stats::Counter NumPrograms("fuzz.programs_checked");
  static const stats::Counter NumMismatches("fuzz.mismatches");
  static const stats::Counter FireClosedForm("fuzz.check.closed_form");
  static const stats::Counter FireCFinite("fuzz.check.cfinite");
  static const stats::Counter FirePartial("fuzz.check.partial");
  static const stats::Counter FireWrapAround("fuzz.check.wrap_around");
  static const stats::Counter FirePeriodic("fuzz.check.periodic");
  static const stats::Counter FireMonotonic("fuzz.check.monotonic");
  static const stats::Counter FirePhasePeriodic("fuzz.check.phase_periodic");
  static const stats::Counter FireTripCount("fuzz.check.trip_count");
  static const stats::Counter FireBehavior("fuzz.check.behavior");
  static const stats::Counter FireBaseline("fuzz.check.baseline");
  stats::ScopedSpan Span(OraclePhase);
  OracleResult R = OracleRun(Source, Opts).run();
  NumPrograms.bump();
  NumMismatches.bump(R.Mismatches.size());
  FireClosedForm.bump(R.Checks.ClosedForm);
  FireCFinite.bump(R.Checks.CFinite);
  FirePartial.bump(R.Checks.Partial);
  FireWrapAround.bump(R.Checks.WrapAround);
  FirePeriodic.bump(R.Checks.Periodic);
  FireMonotonic.bump(R.Checks.Monotonic);
  FirePhasePeriodic.bump(R.Checks.PhasePeriodic);
  FireTripCount.bump(R.Checks.TripCount);
  FireBehavior.bump(R.Checks.Behavior);
  FireBaseline.bump(R.Checks.Baseline);
  return R;
}
