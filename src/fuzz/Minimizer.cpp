//===- fuzz/Minimizer.cpp - Delta-debugging program minimizer -----------------===//

#include "fuzz/Minimizer.h"
#include "frontend/AST.h"
#include "frontend/Parser.h"
#include <vector>

using namespace biv;
using namespace biv::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinKept(const std::vector<std::string> &Lines,
                     const std::vector<bool> &Keep) {
  std::string S;
  for (size_t K = 0; K < Lines.size(); ++K)
    if (Keep[K]) {
      S += Lines[K];
      S += '\n';
    }
  return S;
}

unsigned countStmts(const frontend::StmtList &Body) {
  unsigned N = 0;
  for (const frontend::Stmt *S : Body) {
    ++N;
    if (const auto *If = frontend::ast_dyn_cast<frontend::IfStmt>(S)) {
      N += countStmts(If->thenBody());
      N += countStmts(If->elseBody());
    } else if (const auto *L =
                   frontend::ast_dyn_cast<frontend::LoopStmt>(S)) {
      N += countStmts(L->body());
    } else if (const auto *F =
                   frontend::ast_dyn_cast<frontend::ForStmt>(S)) {
      N += countStmts(F->body());
    } else if (const auto *W =
                   frontend::ast_dyn_cast<frontend::WhileStmt>(S)) {
      N += countStmts(W->body());
    }
  }
  return N;
}

} // namespace

unsigned biv::fuzz::countStatements(const std::string &Source) {
  frontend::Parser P(Source);
  frontend::FuncDecl *F = P.parseFunction();
  if (!F || !P.errors().empty())
    return 0;
  return countStmts(F->Body);
}

namespace {

/// One removable region: a single statement line, or a whole balanced
/// construct (loop / if-else) spanning [Begin, End) including its braces.
struct Unit {
  size_t Begin, End;
};

/// Groups the kept lines of [Begin, End) into removable units by brace
/// balance.  A line opening more braces than it closes starts a construct
/// that ends where the cumulative depth returns to zero, so an `if {} else
/// {}` -- whose `} else {` line nets zero -- is one unit: dropping it
/// removes both arms and the scaffolding together, which plain line chunks
/// can almost never do without breaking the parse.  Scaffolding lines that
/// both close and reopen at region level are never units of their own.
std::vector<Unit> scanUnits(const std::vector<std::string> &Lines,
                            const std::vector<bool> &Keep, size_t Begin,
                            size_t End) {
  std::vector<Unit> Units;
  int Depth = 0;
  size_t Start = 0;
  for (size_t K = Begin; K < End; ++K) {
    if (!Keep[K])
      continue;
    int Open = 0, Close = 0;
    for (char C : Lines[K]) {
      if (C == '#')
        break;
      Open += C == '{';
      Close += C == '}';
    }
    if (Depth == 0) {
      if (Open > Close) {
        Start = K;
        Depth = Open - Close;
      } else if (Open == 0 && Close == 0) {
        Units.push_back({K, K + 1});
      }
      // `} else {`-style lines (and stray closers) at region level are
      // scaffolding of the enclosing construct: always kept here.
    } else {
      Depth += Open - Close;
      if (Depth <= 0) {
        Units.push_back({Start, K + 1});
        Depth = 0;
      }
    }
  }
  return Units;
}

} // namespace

MinimizeResult biv::fuzz::minimizeProgram(const std::string &Source,
                                          const StillFailing &Pred) {
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<bool> Keep(Lines.size(), true);
  unsigned Probes = 0;

  auto tryWithoutUnits = [&](const std::vector<Unit> &Units, size_t UB,
                             size_t UE) {
    // Tentatively drop every kept line of units [UB, UE); commit if still
    // failing.  A chunk whose lines are all dropped already would re-test
    // the current candidate verbatim, so it is skipped before Probes is
    // charged: the counter reflects predicate runs that could change the
    // outcome.
    std::vector<size_t> Dropped;
    for (size_t U = UB; U < UE && U < Units.size(); ++U)
      for (size_t K = Units[U].Begin; K < Units[U].End; ++K)
        if (Keep[K]) {
          Keep[K] = false;
          Dropped.push_back(K);
        }
    if (Dropped.empty())
      return false;
    ++Probes;
    if (Pred(joinKept(Lines, Keep)))
      return true;
    for (size_t K : Dropped)
      Keep[K] = true;
    return false;
  };

  // ddmin over units: remove chunks of units, halving the chunk size until
  // single units.  Each chunk size runs to a fixed point, so after the
  // size-1 passes no single unit of the region can be removed.  Surviving
  // constructs then recurse: their interiors (the branch arms, the loop
  // bodies) get the same treatment, down to single statements.
  std::function<void(size_t, size_t)> ddminRegion = [&](size_t Begin,
                                                        size_t End) {
    std::vector<Unit> Units = scanUnits(Lines, Keep, Begin, End);
    if (Units.empty())
      return;
    for (size_t Chunk = Units.size() == 1 ? 1 : Units.size() / 2; Chunk >= 1;
         Chunk /= 2) {
      bool Removed = true;
      while (Removed) {
        Removed = false;
        for (size_t U = 0; U < Units.size(); U += Chunk)
          Removed |= tryWithoutUnits(Units, U, U + Chunk);
      }
      if (Chunk == 1)
        break;
    }
    for (const Unit &U : Units)
      if (U.End - U.Begin > 2 && Keep[U.Begin])
        ddminRegion(U.Begin + 1, U.End - 1);
  };
  ddminRegion(0, Lines.size());

  MinimizeResult R;
  R.Source = joinKept(Lines, Keep);
  // ddmin only ever commits candidates the predicate accepted, but the
  // contract ("the repro you get still fails") is too important to rest on
  // bookkeeping: re-verify the final source, and fall back to the original
  // known-failing input on any mismatch.  The check is a real predicate
  // run, so it is charged to Probes like any other.
  ++Probes;
  if (!Pred(R.Source))
    R.Source = Source;
  frontend::Parser P(R.Source);
  frontend::FuncDecl *F = P.parseFunction();
  R.Parses = F != nullptr && P.errors().empty();
  R.Statements = R.Parses ? countStmts(F->Body) : 0;
  R.Probes = Probes;
  return R;
}
