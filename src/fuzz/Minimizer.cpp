//===- fuzz/Minimizer.cpp - Delta-debugging program minimizer -----------------===//

#include "fuzz/Minimizer.h"
#include "frontend/AST.h"
#include "frontend/Parser.h"
#include <vector>

using namespace biv;
using namespace biv::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinKept(const std::vector<std::string> &Lines,
                     const std::vector<bool> &Keep) {
  std::string S;
  for (size_t K = 0; K < Lines.size(); ++K)
    if (Keep[K]) {
      S += Lines[K];
      S += '\n';
    }
  return S;
}

unsigned countStmts(const frontend::StmtList &Body) {
  unsigned N = 0;
  for (const frontend::Stmt *S : Body) {
    ++N;
    if (const auto *If = frontend::ast_dyn_cast<frontend::IfStmt>(S)) {
      N += countStmts(If->thenBody());
      N += countStmts(If->elseBody());
    } else if (const auto *L =
                   frontend::ast_dyn_cast<frontend::LoopStmt>(S)) {
      N += countStmts(L->body());
    } else if (const auto *F =
                   frontend::ast_dyn_cast<frontend::ForStmt>(S)) {
      N += countStmts(F->body());
    } else if (const auto *W =
                   frontend::ast_dyn_cast<frontend::WhileStmt>(S)) {
      N += countStmts(W->body());
    }
  }
  return N;
}

} // namespace

unsigned biv::fuzz::countStatements(const std::string &Source) {
  frontend::Parser P(Source);
  frontend::FuncDecl *F = P.parseFunction();
  if (!F || !P.errors().empty())
    return 0;
  return countStmts(F->Body);
}

MinimizeResult biv::fuzz::minimizeProgram(const std::string &Source,
                                          const StillFailing &Pred) {
  std::vector<std::string> Lines = splitLines(Source);
  std::vector<bool> Keep(Lines.size(), true);
  unsigned Probes = 0;

  auto tryWithout = [&](size_t Begin, size_t End) {
    // Tentatively drop kept lines in [Begin, End); commit if still failing.
    // A chunk whose lines are all dropped already would re-test the current
    // candidate verbatim, so it is skipped before Probes is charged: the
    // counter reflects predicate runs that could change the outcome.
    std::vector<size_t> Dropped;
    for (size_t K = Begin; K < End && K < Lines.size(); ++K)
      if (Keep[K]) {
        Keep[K] = false;
        Dropped.push_back(K);
      }
    if (Dropped.empty())
      return false;
    ++Probes;
    if (Pred(joinKept(Lines, Keep)))
      return true;
    for (size_t K : Dropped)
      Keep[K] = true;
    return false;
  };

  // ddmin: remove chunks, halving the chunk size until single lines.  Each
  // chunk size runs to a fixed point, so after the size-1 passes no single
  // line can be removed -- the survivor is already 1-minimal and a separate
  // elimination sweep would only burn one failing probe per kept line.
  for (size_t Chunk = Lines.size() / 2; Chunk >= 1; Chunk /= 2) {
    bool Removed = true;
    while (Removed) {
      Removed = false;
      for (size_t Begin = 0; Begin < Lines.size(); Begin += Chunk)
        Removed |= tryWithout(Begin, Begin + Chunk);
    }
    if (Chunk == 1)
      break;
  }

  MinimizeResult R;
  R.Source = joinKept(Lines, Keep);
  // ddmin only ever commits candidates the predicate accepted, but the
  // contract ("the repro you get still fails") is too important to rest on
  // bookkeeping: re-verify the final source, and fall back to the original
  // known-failing input on any mismatch.  The check is a real predicate
  // run, so it is charged to Probes like any other.
  ++Probes;
  if (!Pred(R.Source))
    R.Source = Source;
  frontend::Parser P(R.Source);
  frontend::FuncDecl *F = P.parseFunction();
  R.Parses = F != nullptr && P.errors().empty();
  R.Statements = R.Parses ? countStmts(F->Body) : 0;
  R.Probes = Probes;
  return R;
}
