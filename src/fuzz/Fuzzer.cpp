//===- fuzz/Fuzzer.cpp - Differential fuzzing campaign driver -----------------===//

#include "fuzz/Fuzzer.h"
#include "cache/AnalysisCache.h"
#include "driver/BatchAnalyzer.h"
#include "fuzz/Minimizer.h"
#include "support/Lcg.h"
#include <sstream>

using namespace biv;
using namespace biv::fuzz;

namespace {

/// The minimizer predicate: a candidate still fails when it parses and the
/// oracle reports at least one mismatch of the same category as the
/// original finding (so minimization cannot drift onto an unrelated
/// failure, e.g. an execution fault introduced by dropping an initializer).
bool stillFails(const std::string &Candidate, const OracleOptions &Opts,
                const std::string &Category) {
  OracleResult R = checkProgram(Candidate, Opts);
  if (!R.ParseOK)
    return false;
  for (const Mismatch &M : R.Mismatches)
    if (M.Check == Category)
      return true;
  return false;
}

/// Cache oracle over \p Corpus: a run that populates an in-memory cache and
/// a run served entirely from it must both render exactly like a run with
/// no cache at all.  On divergence fills \p Detail and returns false.
bool cacheColdWarmIdentical(const std::vector<driver::SourceInput> &Corpus,
                            bool Summarize, std::string &Detail) {
  driver::BatchOptions BO;
  BO.Report.AllValues = true;
  BO.Summarize = Summarize;
  std::string Plain = driver::analyzeBatch(Corpus, BO).renderText();
  cache::AnalysisCache Cache; // in-memory: never opened, never saved
  BO.Cache = &Cache;
  std::string Cold = driver::analyzeBatch(Corpus, BO).renderText();
  std::string Warm = driver::analyzeBatch(Corpus, BO).renderText();
  if (Plain != Cold) {
    Detail = "cold-cache report differs from no-cache report";
    return false;
  }
  if (Cold != Warm) {
    Detail = "warm-cache report differs from cold-cache report";
    return false;
  }
  return true;
}

} // namespace

FuzzResult biv::fuzz::runFuzz(const FuzzOptions &Opts) {
  FuzzResult Result;
  std::vector<driver::SourceInput> Corpus;
  Corpus.reserve(Opts.Count);

  Lcg SeedStream(Opts.Seed);
  for (unsigned I = 0; I < Opts.Count; ++I) {
    uint64_t ProgramSeed = SeedStream.next();
    std::string Source = generateProgram(ProgramSeed, Opts.Gen);
    Corpus.push_back({"fuzz" + std::to_string(I), Source});

    OracleOptions OO = Opts.Oracle;
    OO.ArraySeed = ProgramSeed;
    OracleResult R = checkProgram(Source, OO);
    ++Result.Programs;
    Result.Checks += R.Checks;

    // Randomly flip the cache on for ~1/8 of programs (always with
    // --cache-oracle): cold and warm runs through an in-memory cache must
    // be byte-identical to a cache-free run.  The flip derives from the
    // program seed, so a failure replays from (Seed, i) like any other.
    if (R.ParseOK &&
        (Opts.CacheOracleAlways || ((ProgramSeed >> 4) & 7) == 0)) {
      ++Result.CacheOracleRuns;
      Result.CacheChecked = true;
      std::string Detail;
      if (!cacheColdWarmIdentical({Corpus.back()}, Opts.Oracle.Summarize,
                                  Detail)) {
        Result.CacheDeterministic = false;
        Mismatch M;
        M.Check = "cache";
        M.Claim = "cache hit reproduces the analysis byte-for-byte";
        M.Observed = Detail;
        R.Mismatches.push_back(std::move(M));
      }
    }

    if (R.ParseOK && R.Mismatches.empty())
      continue;

    FuzzFailure F;
    F.ProgramSeed = ProgramSeed;
    F.Source = Source;
    if (!R.ParseOK) {
      // The generator must only emit frontend-clean programs; surface a
      // rejection as a failure of the fuzzer itself.
      Mismatch M;
      M.Check = "generator";
      M.Claim = "generated program parses and lowers";
      M.Observed = R.FrontendErrors.empty() ? std::string("rejected")
                                            : R.FrontendErrors.front();
      F.Mismatches.push_back(std::move(M));
    } else {
      F.Mismatches = R.Mismatches;
    }

    // "cache" findings cannot drive the minimizer (its predicate replays
    // the interpreter oracle, which knows nothing of the cache).
    if (Opts.Minimize && R.ParseOK && F.Mismatches.front().Check != "cache") {
      const std::string Category = F.Mismatches.front().Check;
      MinimizeResult MR = minimizeProgram(Source, [&](const std::string &C) {
        return stillFails(C, OO, Category);
      });
      F.MinimizedSource = MR.Source;
      F.MinimizedStatements = MR.Statements;
      OracleResult MRes = checkProgram(MR.Source, OO);
      F.MinimizedMismatches = std::move(MRes.Mismatches);
    }

    Result.Failures.push_back(std::move(F));
    if (Result.Failures.size() >= Opts.MaxFailures)
      break;
  }

  // Structural diff: the batch driver must render the fuzzed corpus
  // byte-identically no matter how many workers analyze it.
  if (Opts.BatchJobs > 1 && !Corpus.empty()) {
    driver::BatchOptions BO;
    BO.Report.AllValues = true;
    BO.Summarize = Opts.Oracle.Summarize;
    BO.Jobs = 1;
    std::string Serial = driver::analyzeBatch(Corpus, BO).renderText();
    BO.Jobs = Opts.BatchJobs;
    std::string Parallel = driver::analyzeBatch(Corpus, BO).renderText();
    Result.BatchChecked = true;
    Result.BatchDeterministic = Serial == Parallel;

    // Corpus-level cache oracle under concurrency: prime an in-memory
    // cache with half the corpus, then run the whole corpus twice with
    // -jN workers probing it.  The mixed hit/miss run and the fully warm
    // run must both match the cache-free rendering above.
    cache::AnalysisCache Cache;
    BO.Cache = &Cache;
    std::vector<driver::SourceInput> Prefix(
        Corpus.begin(), Corpus.begin() + Corpus.size() / 2);
    if (!Prefix.empty())
      driver::analyzeBatch(Prefix, BO);
    std::string Mixed = driver::analyzeBatch(Corpus, BO).renderText();
    std::string Warm = driver::analyzeBatch(Corpus, BO).renderText();
    Result.CacheChecked = true;
    if (Mixed != Parallel || Warm != Parallel)
      Result.CacheDeterministic = false;
  }
  return Result;
}

std::string FuzzResult::renderText() const {
  std::ostringstream OS;
  OS << "fuzz: " << Programs << " program(s), " << Checks.total()
     << " claims checked (closed-form " << Checks.ClosedForm
     << ", cfinite " << Checks.CFinite << ", partial " << Checks.Partial
     << ", wrap-around " << Checks.WrapAround << ", periodic "
     << Checks.Periodic << ", monotonic " << Checks.Monotonic
     << ", phase-periodic " << Checks.PhasePeriodic
     << ", trip-count " << Checks.TripCount << ", behavior "
     << Checks.Behavior << ", baseline " << Checks.Baseline << ")\n";
  if (BatchChecked)
    OS << "fuzz: batch -j1 vs -jN report "
       << (BatchDeterministic ? "byte-identical" : "DIFFERS") << "\n";
  if (CacheChecked)
    OS << "fuzz: cache cold/warm reports "
       << (CacheDeterministic ? "byte-identical" : "DIFFER") << " ("
       << CacheOracleRuns << " per-program oracle run(s))\n";

  for (size_t K = 0; K < Failures.size(); ++K) {
    const FuzzFailure &F = Failures[K];
    OS << "\n=== failure " << K + 1 << " (seed " << F.ProgramSeed
       << ") ===\n";
    for (const Mismatch &M : F.Mismatches)
      OS << "  " << M.str() << "\n";
    if (!F.MinimizedSource.empty()) {
      OS << "  minimized to " << F.MinimizedStatements
         << " statement(s):\n";
      std::istringstream In(F.MinimizedSource);
      std::string Line;
      while (std::getline(In, Line))
        OS << "    | " << Line << "\n";
      for (const Mismatch &M : F.MinimizedMismatches)
        OS << "  " << M.str() << "\n";
    } else {
      std::istringstream In(F.Source);
      std::string Line;
      while (std::getline(In, Line))
        OS << "    | " << Line << "\n";
    }
  }
  OS << (ok() ? "fuzz: OK\n" : "fuzz: FAILURES FOUND\n");
  return OS.str();
}
