//===- fuzz/ProgramGen.cpp - Grammar-based program generator ------------------===//

#include "fuzz/ProgramGen.h"
#include "support/Lcg.h"
#include <vector>

using namespace biv;
using namespace biv::fuzz;

namespace {

/// Emits one function, one statement per line.
class Generator {
public:
  Generator(uint64_t Seed, const GenOptions &Opts) : R(Seed), Opts(Opts) {}

  std::string run() {
    Src = "func fuzzed(n) {\n";
    // Scalar pool.  v* are general recurrence carriers; p0..p2/tmp form the
    // rotation family; w/w2 the wrap-around chain; m* the monotonic bumps.
    for (int V = 0; V < 6; ++V)
      line(1, "v" + std::to_string(V) + " = " +
                  std::to_string(R.range(0, 9)) + ";");
    line(1, "p0 = " + std::to_string(R.range(1, 4)) + ";");
    line(1, "p1 = " + std::to_string(R.range(5, 8)) + ";");
    line(1, "p2 = " + std::to_string(R.range(9, 12)) + ";");
    line(1, "tmp = 0;");
    line(1, "w = " + std::to_string(R.range(90, 99)) + ";");
    line(1, "w2 = " + std::to_string(R.range(80, 89)) + ";");
    line(1, "m0 = 0;");
    line(1, "m1 = 100;");
    // c-finite pool: c0 feeds the resonant pair, x0/y0/ct form the coupled
    // system, px/pt/pm/ps the unsolvable SCC with a solvable sub-recurrence.
    line(1, "c0 = " + std::to_string(R.range(1, 3)) + ";");
    line(1, "c1 = " + std::to_string(R.range(0, 2)) + ";");
    line(1, "x0 = " + std::to_string(R.range(0, 3)) + ";");
    line(1, "y0 = " + std::to_string(R.range(0, 3)) + ";");
    line(1, "ct = 0;");
    line(1, "px = " + std::to_string(R.range(0, 1)) + ";");
    line(1, "pt = 0;");
    line(1, "pm = 0;");
    line(1, "ps = 0;");
    // Multi-branch pool: fs is a sign flip-flop steering unequal-update
    // arms, fz/fg the accumulators those arms drive (the summarizer's
    // phase-periodic shapes).
    line(1, "fs = 1;");
    line(1, "fz = " + std::to_string(R.range(0, 5)) + ";");
    line(1, "fg = 1;");

    unsigned TopLoops = unsigned(R.range(1, int64_t(Opts.MaxTopLoops)));
    for (unsigned T = 0; T < TopLoops; ++T)
      genLoop(1, T);
    line(1, "return v0;");
    Src += "}\n";
    return Src;
  }

private:
  void line(unsigned Depth, const std::string &Text) {
    Src += std::string(2 * Depth, ' ') + Text + "\n";
  }

  std::string freshIV(unsigned Depth, unsigned Sibling) {
    return "i" + std::to_string(Depth) + std::to_string(Sibling);
  }

  /// One loop at \p Depth.  Shapes: counted `for` (up, down, strided), a
  /// triangular `for` bounded by the enclosing IV, or an uncounted `loop`
  /// exited by a strictly increasing counter.
  void genLoop(unsigned Depth, unsigned Sibling) {
    std::string L = "L" + std::to_string(Depth) + std::to_string(Sibling) +
                    std::to_string(unsigned(R.range(0, 99)));
    std::string IV = freshIV(Depth, Sibling);
    int64_t Trip = R.range(2, Opts.MaxTrip);
    unsigned Shape = unsigned(R.range(0, 9));

    if (Shape <= 4 || Depth == 1) {
      // Plain counted loop; occasionally strided or counting down.
      if (Shape == 1)
        line(Depth, "for " + L + ": " + IV + " = 1 to " +
                        std::to_string(2 * Trip) + " by 2 {");
      else if (Shape == 2)
        line(Depth, "for " + L + ": " + IV + " = " + std::to_string(Trip) +
                        " downto 1 {");
      else
        line(Depth, "for " + L + ": " + IV + " = 1 to " +
                        std::to_string(Trip) + " {");
    } else if (Shape <= 7) {
      // Triangular: trip count is the enclosing loop's IV (Figure 9).
      std::string Outer = CurrentIVs.back();
      line(Depth, "for " + L + ": " + IV + " = 1 to " + Outer + " {");
    } else {
      // Uncounted loop with a guaranteed strictly increasing exit counter.
      line(Depth, IV + " = 0;");
      line(Depth, "loop " + L + " {");
      line(Depth + 1, IV + " = " + IV + " + 1;");
      genBody(Depth, Sibling, IV);
      line(Depth + 1,
           "if (" + IV + " > " + std::to_string(Trip) + ") break;");
      line(Depth, "}");
      return;
    }
    CurrentIVs.push_back(IV);
    genBody(Depth, Sibling, IV);
    CurrentIVs.pop_back();
    line(Depth, "}");
  }

  void genBody(unsigned Depth, unsigned Sibling, const std::string &IV) {
    bool TookIV = CurrentIVs.empty() || CurrentIVs.back() != IV;
    if (TookIV)
      CurrentIVs.push_back(IV);
    unsigned Stmts =
        unsigned(R.range(int64_t(Opts.MinStmts), int64_t(Opts.MaxStmts)));
    for (unsigned K = 0; K < Stmts; ++K)
      genStatement(Depth + 1, IV);
    if (Depth < Opts.MaxDepth && R.chance(35))
      genLoop(Depth + 1, Sibling);
    if (TookIV)
      CurrentIVs.pop_back();
  }

  std::string var() { return "v" + std::to_string(R.range(0, 5)); }
  std::string num(int64_t Lo, int64_t Hi) {
    return std::to_string(R.range(Lo, Hi));
  }

  /// One statement from the recurrence grammar.
  void genStatement(unsigned Depth, const std::string &IV) {
    std::string V = var(), W = var();
    switch (R.range(0, 20)) {
    case 0: // basic linear update
      line(Depth, V + " = " + V + " + " + num(1, 6) + ";");
      break;
    case 1: // derived linear chain a*i + b, or chained off another carrier
      if (R.chance(50))
        line(Depth, V + " = " + num(1, 5) + "*" + IV + " + " + num(0, 9) +
                        ";");
      else
        line(Depth, V + " = " + W + " + " + num(1, 4) + ";");
      break;
    case 2: // polynomial update (integrates the enclosing counter)
      line(Depth, V + " = " + V + " + " + IV + ";");
      break;
    case 3: // higher-degree polynomial: integrate another carrier
      line(Depth, V + " = " + V + " + " + W + ";");
      break;
    case 4: // geometric update (bounded: trips and depth are small)
      line(Depth, V + " = " + V + " * 2 + " + num(0, 3) + ";");
      break;
    case 5: // flip-flop
      line(Depth, V + " = " + num(1, 9) + " - " + V + ";");
      break;
    case 6: // wrap-around chain (second order through w2)
      line(Depth, "w2 = w;");
      line(Depth, "w = " + (R.chance(60) ? IV : V) + ";");
      break;
    case 7: // period-3 rotation
      line(Depth, "tmp = p0;");
      line(Depth, "p0 = p1;");
      line(Depth, "p1 = p2;");
      line(Depth, "p2 = tmp;");
      break;
    case 8: // conditional monotonic bump (data-dependent predicate)
      // One statement per line: the minimizer's ddmin works on lines, so
      // conditional bodies get their own (removable) lines.
      line(Depth, "if (A[" + IV + "] > " + num(-2, 3) + ") {");
      line(Depth + 1, "m0 = m0 + " + num(1, 3) + ";");
      line(Depth, "}");
      break;
    case 9: // conditional monotonic decrease, non-strict
      line(Depth, "if (A[" + IV + " + 1] > " + num(0, 2) + ") {");
      line(Depth + 1, "m1 = m1 - " + num(1, 2) + ";");
      line(Depth, "}");
      break;
    case 10: { // conditional equal-increment join: linear on both arms
      std::string Inc = num(1, 5);
      line(Depth, "if (A[" + IV + "] > " + num(0, 3) + ") {");
      line(Depth + 1, V + " = " + V + " + " + Inc + ";");
      line(Depth, "} else {");
      line(Depth + 1, V + " = " + V + " + " + Inc + ";");
      line(Depth, "}");
      break;
    }
    case 11: // derived store (keeps carriers observable, feeds dependences)
      line(Depth, "B[" + num(1, 3) + "*" + IV + " + " + num(0, 4) + "] = " +
                      V + ";");
      break;
    case 12: // load through an IV subscript
      line(Depth, V + " = " + V + " + B[" + IV + " + " + num(0, 2) + "];");
      break;
    case 13: // invariant re-assignment / copy
      if (R.chance(50))
        line(Depth, V + " = " + num(0, 20) + ";");
      else
        line(Depth, V + " = " + W + ";");
      break;
    case 14: { // mixed c-finite update x' = a*x + p(i), or the degenerate
               // a = 0 self-cancel (a first-order wrap-around)
      unsigned Pick = unsigned(R.range(0, 2));
      if (Pick == 0)
        line(Depth, V + " = 2*" + V + " + " + IV + "^2;");
      else if (Pick == 1)
        line(Depth, V + " = " + num(2, 3) + "*" + V + " + " + num(1, 4) +
                        "*" + IV + " + " + num(0, 3) + ";");
      else
        line(Depth, V + " = " + V + " - " + V + " + " + num(1, 3) + "*" +
                        IV + ";");
      break;
    }
    case 15: // resonant pair: c0 is geometric, c1' = 2*c1 + c0 needs h*2^h
      line(Depth, "c0 = c0 * 2;");
      line(Depth, "c1 = 2*c1 + c0;");
      break;
    case 16: // coupled 2-variable system, eigenvalues {3, -1}
      line(Depth, "ct = x0 + 2*y0;");
      if (R.chance(50))
        line(Depth, "y0 = 2*x0 + y0;");
      else
        line(Depth, "y0 = 2*x0 + y0 + " + IV + ";");
      line(Depth, "x0 = ct;");
      break;
    case 17: // unsolvable SCC (px' = px^2 + pm) whose member pm has a
             // phi-free value (= IV), unlocking the downstream sum ps.
      line(Depth, "pt = px + " + IV + ";");
      line(Depth, "pm = pt - px;");
      line(Depth, "px = px * px + pm;");
      line(Depth, "ps = ps + pm;");
      break;
    case 18: // multi-branch flip-flop: unequal updates steered by a sign
             // alternator (the summarizer's period-2 shape)
      line(Depth, "if (fs > 0) {");
      line(Depth + 1, "fz = fz + " + num(1, 6) + ";");
      line(Depth, "} else {");
      line(Depth + 1, "fz = fz - " + num(1, 4) + ";");
      line(Depth, "}");
      line(Depth, "fs = 0 - fs;");
      break;
    case 19: // ring-driven selector: the period-3 rotation picks an arm
             // (p0 starts in [1,4]; p1/p2 are >= 5)
      line(Depth, "if (p0 < 5) {");
      line(Depth + 1, "fz = fz + " + num(1, 5) + ";");
      line(Depth, "} else {");
      line(Depth + 1, "fz = fz + " + num(6, 9) + ";");
      line(Depth, "}");
      line(Depth, "tmp = p0;");
      line(Depth, "p0 = p1;");
      line(Depth, "p1 = p2;");
      line(Depth, "p2 = tmp;");
      break;
    case 20: // geometric arm: one phase doubles, the other adds (a
             // multiplicative per-cycle composition)
      line(Depth, "if (fs > 0) {");
      line(Depth + 1, "fg = fg * 2;");
      line(Depth, "} else {");
      line(Depth + 1, "fg = fg + " + num(1, 3) + ";");
      line(Depth, "}");
      line(Depth, "fs = 0 - fs;");
      break;
    }
  }

  Lcg R;
  const GenOptions &Opts;
  std::string Src;
  /// Innermost-last stack of live induction variable names ("n" sentinel at
  /// top level so triangular shapes always have a bound).
  std::vector<std::string> CurrentIVs = {"n"};
};

} // namespace

std::string biv::fuzz::generateProgram(uint64_t Seed, const GenOptions &Opts) {
  return Generator(Seed, Opts).run();
}
