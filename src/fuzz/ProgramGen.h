//===- fuzz/ProgramGen.h - Grammar-based program generator ------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, deterministic generator of random loop-language programs that mix
/// every recurrence shape the paper classifies: linear and derived chains,
/// conditional equal-increment joins, wrap-arounds (first and second order),
/// flip-flops and period-3 rotations, polynomial and geometric updates,
/// nested (including triangular) loops, and conditional monotonic bumps --
/// plus the c-finite extension: mixed updates x' = a*x + p(i), the resonant
/// pair whose closed form needs h*2^h, a coupled two-variable system with
/// integer eigenvalues, and an unsolvable SCC whose phi-free member is still
/// classified (a partial closed form) -- and the multi-branch shapes the
/// summarizer proves: sign-flip-flop steered unequal updates, ring-driven
/// arm selection, and a doubling/adding geometric arm pair.
///
/// Two invariants make the output fuzzer-friendly:
///  - every program terminates: loop bounds are small constants (or the
///    enclosing induction variable, for triangular nests) and `loop`/`while`
///    forms always exit through a strictly increasing linear counter;
///  - one statement per line, so the delta-debugging minimizer can treat the
///    program as a list of removable lines.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FUZZ_PROGRAMGEN_H
#define BEYONDIV_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace biv {
namespace fuzz {

/// Shape knobs; the defaults cover every grammar production.
struct GenOptions {
  /// Top-level loops per program (1..MaxTopLoops, chosen per seed).
  unsigned MaxTopLoops = 2;
  /// Maximum loop nesting depth.
  unsigned MaxDepth = 3;
  /// Statements per loop body (min..max, chosen per seed).
  unsigned MinStmts = 2;
  unsigned MaxStmts = 7;
  /// Largest constant trip count of a generated `for` loop.
  int64_t MaxTrip = 8;
};

/// Generates one program for \p Seed.  Same seed, same program, always.
std::string generateProgram(uint64_t Seed, const GenOptions &Opts = {});

} // namespace fuzz
} // namespace biv

#endif // BEYONDIV_FUZZ_PROGRAMGEN_H
