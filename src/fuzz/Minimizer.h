//===- fuzz/Minimizer.h - Delta-debugging program minimizer -----*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a mismatching program to a (1-minimal) statement list before it
/// is reported or checked into the regression corpus.
///
/// The algorithm is Zeller's ddmin over *units*: single statement lines,
/// or whole balanced constructs (a loop, an `if {} else {}` with both
/// arms) grouped by brace balance, so a multi-branch construct drops in
/// one probe instead of never parsing when a line chunk splits it.  Each
/// region's chunk-size-1 passes run to a fixed point, then surviving
/// constructs recurse into their interiors (branch arms, loop bodies),
/// so the result is 1-minimal at every nesting level.  Structural damage
/// still simply fails to parse, which the caller's predicate rejects.
/// The final candidate is re-verified against the predicate before it is
/// returned; if bookkeeping ever produced a non-failing candidate, the
/// original input is handed back instead.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FUZZ_MINIMIZER_H
#define BEYONDIV_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace biv {
namespace fuzz {

/// Returns true when a candidate program still exhibits the failure being
/// minimized.  The predicate owns validity checking: candidates that do not
/// parse must return false.
using StillFailing = std::function<bool(const std::string &Source)>;

struct MinimizeResult {
  std::string Source;      ///< The minimized program.
  bool Parses = false;     ///< Whether Source parses; distinguishes an
                           ///< unparseable repro from a parseable one with
                           ///< zero statements (both report Statements 0).
  unsigned Statements = 0; ///< AST statement count of the result (0 when
                           ///< !Parses).
  unsigned Probes = 0;     ///< Predicate evaluations actually run: chunks
                           ///< whose lines are all dropped already are
                           ///< skipped without a probe, and the final
                           ///< re-verification counts as one probe.
};

/// Minimizes \p Source under \p Pred.  \p Pred(Source) must be true on
/// entry; the result is a program on which \p Pred still holds and from
/// which no single line can be removed without losing the failure.  The
/// returned source is re-verified against \p Pred; on any mismatch the
/// original \p Source is returned unshrunk.
MinimizeResult minimizeProgram(const std::string &Source,
                               const StillFailing &Pred);

/// Number of AST statements in \p Source (loop/if headers count one each,
/// bodies recurse); 0 when the program does not parse.
unsigned countStatements(const std::string &Source);

} // namespace fuzz
} // namespace biv

#endif // BEYONDIV_FUZZ_MINIMIZER_H
