//===- cache/AnalysisCache.h - Content-addressed analysis cache -*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed cache of per-function analysis results,
/// the scaling lever behind `bivc --batch --cache FILE`: re-analyzing a
/// mostly-unchanged corpus only pays for the units whose content changed.
///
/// Keying (DESIGN.md §9).  The key is a 64-bit FNV-1a digest of
///  - the *lowered function's canonical IR print* (so formatting and
///    comments never miss, and textually different sources that lower to
///    the same IR share an entry),
///  - an analysis-version salt (`AnalysisVersionSalt`, bumped whenever
///    ivclass / dependence / transform code changes what the analysis
///    *means* -- a stale-salt file is discarded wholesale on load), and
///  - an options fingerprint (the pipeline switches that change report
///    bytes: SCCP, exit-value materialization, classification on/off,
///    all-values, nested tuples).
///
/// Values are the full per-function `UnitResult` payload: the rendered
/// report, the InductionAnalysis stats, per-kind counts, instruction/loop
/// totals, and the unit's *analysis-phase counter deltas* (captured after
/// the frontend, so a warm run -- which still parses in order to hash --
/// can replay them without double counting).  Wolfe's algorithm is
/// deterministic and non-iterative per function, which is what makes a hit
/// byte-identical to a recomputation (the fuzz oracle's cache mode checks
/// exactly that).
///
/// File format: a single append-only log with an index footer, so a warm
/// run does one open + one read, not N file opens.
///
///   [magic u64][format u64][salt u64]            header
///   ([digest u64][len u64][payload len bytes])*  entry log, append-only
///   [capacity u64]([digest u64][offset u64])*    open-addressed index
///   [index_off u64][count u64][magic2 u64]       tail
///
/// Appending rewrites only the footer region (new entries land where the
/// old index began); entry bytes, once written, are never touched.  All
/// integers are host-endian -- the cache is a local artifact, not an
/// interchange format.  Any structural damage (bad magic, stale salt or
/// format, truncation, out-of-range offsets) invalidates the whole file:
/// the cache reopens empty and the next save rewrites it, trading
/// re-analysis for never serving a corrupt entry.
///
/// Thread-safety: many concurrent readers, one appender at a time.
/// lookup() takes a shared lock and insert()/open()/save() an exclusive
/// one, so server workers may probe while another worker commits a miss.
/// Returned entry pointers stay valid after the lock drops: entries live in
/// a node-based map and are never erased while the cache is open (open()
/// rebuilds the map, but only before any worker runs).  The batch driver
/// still collects misses per unit slot and inserts them in input order
/// after the pool drains -- not for safety, but to keep the file bytes
/// deterministic for any -jN; the server inserts in completion order and
/// documents that its file bytes are not.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_CACHE_ANALYSISCACHE_H
#define BEYONDIV_CACHE_ANALYSISCACHE_H

#include "ivclass/InductionAnalysis.h"
#include "ivclass/Report.h"
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

namespace biv {
namespace cache {

/// Bump whenever ivclass / dependence / transform semantics change (new
/// classification kinds, different closed forms, report format edits...):
/// every existing cache file becomes stale at once.  tools/check_docs.sh
/// cross-checks this constant against the value DESIGN.md documents.
inline constexpr uint64_t AnalysisVersionSalt = 2;

/// On-disk format revision (layout, not analysis semantics).
inline constexpr uint64_t CacheFormatVersion = 1;

/// 64-bit FNV-1a over \p Data, continuing from \p Seed (the offset basis by
/// default).  Never returns 0 -- 0 marks an empty index slot.
uint64_t fnv1a(const std::string &Data,
               uint64_t Seed = 0xcbf29ce484222325ull);

/// The cache key for one unit: canonical IR print x salt x the pipeline
/// options that change result bytes (packed by the caller into \p OptsBits).
uint64_t unitDigest(const std::string &CanonicalIR, uint64_t OptsBits);

/// The cached payload for one function (everything a batch UnitResult
/// carries besides its name and live stats frame).
struct CacheEntry {
  std::string ReportText;
  ivclass::InductionAnalysis::Stats Stats;
  ivclass::KindCounts Kinds;
  uint64_t Instructions = 0;
  uint64_t Loops = 0;
  /// The unit's analysis-phase counter deltas by name (frontend counters
  /// excluded: a hit re-parses, so those fire live).  Replayed into the
  /// worker's frame on hit, keeping merged counters corpus-shaped whether
  /// the work ran or was served.
  std::map<std::string, uint64_t> Counters;

  std::string serialize() const;
  /// Returns false (leaving *this partially filled) on malformed bytes.
  bool deserialize(const std::string &Bytes);
};

class AnalysisCache {
public:
  /// Binds the cache to \p Path and loads it.  A missing file is an empty
  /// cache (first cold run); a file with a stale salt/format or any
  /// structural damage is discarded and reported via invalidated().
  /// Returns false only for real I/O errors (unreadable existing file),
  /// with \p Error filled.
  bool open(const std::string &Path, std::string &Error);

  /// The entry for \p Digest, or null.  Pending (inserted, unsaved) entries
  /// are visible.  Safe to call from many threads, concurrently with
  /// insert(); the returned pointer stays valid until the next open().
  const CacheEntry *lookup(uint64_t Digest) const;

  /// Records \p E under \p Digest, to be appended by the next save().
  /// Duplicate digests keep the first entry (content-addressed: same key,
  /// same bytes).  Takes the exclusive lock, so concurrent inserts and
  /// lookups are safe; insertion *order* is whatever the callers make it.
  void insert(uint64_t Digest, CacheEntry E);

  /// Appends pending entries and rewrites the index footer (or writes the
  /// whole file fresh after invalidation).  Returns false with \p Error set
  /// when the path cannot be written -- callers must treat that as a hard
  /// error, not a silent success.  No-op when nothing is pending and the
  /// file is intact.
  bool save(std::string &Error);

  size_t entryCount() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return Entries.size();
  }
  size_t pendingCount() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return PendingLog.size();
  }
  /// True when open() found a file it had to discard (stale salt, damage).
  bool invalidated() const { return Invalidated; }

private:
  std::string Path;
  /// Readers (lookup, counts) shared; open/insert/save exclusive.
  mutable std::shared_mutex M;
  /// digest -> deserialized entry (loaded + pending), for O(1) concurrent
  /// lookup after the one load-time read.
  std::map<uint64_t, CacheEntry> Entries;
  /// digest -> absolute file offset of the entry record, mirroring the
  /// on-disk index for entries already saved.
  std::map<uint64_t, uint64_t> Offsets;
  /// Serialized records not yet on disk, in insertion order (so the file
  /// bytes are deterministic for any worker count).
  std::vector<std::pair<uint64_t, std::string>> PendingLog;
  /// Bytes of valid header + entry log on disk (new entries append here,
  /// overwriting the old footer); 0 = no valid file, save() writes fresh.
  uint64_t DiskLogEnd = 0;
  bool Invalidated = false; ///< disk content was discarded on open()
};

} // namespace cache
} // namespace biv

#endif // BEYONDIV_CACHE_ANALYSISCACHE_H
