//===- cache/AnalysisCache.h - Content-addressed analysis cache -*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent, content-addressed cache of per-function analysis results,
/// the scaling lever behind `bivc --batch --cache FILE` and the daemon's
/// shared warm cache: re-analyzing a mostly-unchanged corpus only pays for
/// the units whose content changed.
///
/// Keying (DESIGN.md §9).  The key is a 64-bit FNV-1a digest of
///  - the *lowered function's canonical IR print* (so formatting and
///    comments never miss, and textually different sources that lower to
///    the same IR share an entry),
///  - an analysis-version salt (`AnalysisVersionSalt`, bumped whenever
///    ivclass / dependence / transform code changes what the analysis
///    *means* -- a stale-salt file is discarded wholesale on load), and
///  - an options fingerprint (the pipeline switches that change report
///    bytes: SCCP, exit-value materialization, classification on/off,
///    all-values, nested tuples, multi-branch summarization).
///
/// Values are the full per-function `UnitResult` payload: the rendered
/// report, the InductionAnalysis stats, per-kind counts, instruction/loop
/// totals, and the unit's *analysis-phase counter deltas* (captured after
/// the frontend, so a warm run -- which still parses in order to hash --
/// can replay them without double counting).  Wolfe's algorithm is
/// deterministic and non-iterative per function, which is what makes a hit
/// byte-identical to a recomputation (the fuzz oracle's cache mode checks
/// exactly that).
///
/// File format (v2): a single append-only log with an index footer, so a
/// warm run does one open + one mmap, not N file opens.
///
///   [magic u64][format u64][salt u64]                   header
///   ([digest u64][len u64][payload len bytes])*         entry log
///   [capacity u64]([digest u64][offset u64])*           open-addressed index
///   [index_off u64][count u64][generation u64][magic2 u64]  tail
///
/// Appending rewrites only the footer region (new entries land where the
/// old index began); entry bytes, once written, are never touched -- the
/// invariant that makes concurrently-mapped readers safe.  The
/// *generation* counter in the tail advances on every successful save, so
/// a process whose in-memory view was loaded at generation G can tell that
/// the file moved under it (another appender, or a compaction swap) and
/// merge instead of clobbering.  All integers are host-endian -- the cache
/// is a local artifact, not an interchange format.  Any structural damage
/// (bad magic, stale salt or format, truncation, out-of-range offsets)
/// invalidates the whole file: the cache reopens empty and the next save
/// rewrites it, trading re-analysis for never serving a corrupt entry.
///
/// Cross-process safety (DESIGN.md §13).  Many processes may share one
/// cache file:
///
///  - *Probes are mmap read-mostly.*  open() maps the file read-only and
///    parses just the index; entry payloads deserialize lazily on first
///    lookup.  Because the entry log is append-only, bytes below our
///    loaded index offset never change, and a compaction swap replaces the
///    whole inode -- a live mapping keeps reading its own consistent
///    snapshot either way.
///  - *The appender takes an advisory flock.*  save() locks the file
///    (re-opening when a compaction renamed a new inode into place),
///    re-reads the on-disk generation, and when the file advanced past its
///    loaded view it merges: adopt the disk's entries, drop pending
///    inserts that now exist, append only what is still new.  Two
///    processes racing the lock both land their entries.
///  - *Compaction bounds the file.*  With a byte cap configured
///    (setMaxBytes / `--cache-max-bytes`), a save whose result would
///    exceed the cap rewrites the file to a temp path keeping the most
///    recently used entries that fit (LRU-ish: recency is tracked per
///    process at lookup/insert), fsyncs, and atomically renames it into
///    place with the generation advanced.  Readers detect the swap via
///    refreshIfChanged() (inode/size/generation comparison).
///
/// Thread-safety within a process: many concurrent readers, one writer.
/// lookup() takes a shared lock (upgrading briefly to materialize a disk
/// entry) and insert()/open()/save() an exclusive one.  Returned entry
/// pointers stay valid after the lock drops: entries live in a node-based
/// map whose nodes are never erased while the cache is open (open()
/// rebuilds the map, but only before any worker runs; runtime
/// invalidation only forgets the *disk index*, never materialized nodes).
/// The batch driver still collects misses per unit slot and inserts them
/// in input order after the pool drains -- not for safety, but to keep the
/// file bytes deterministic for any -jN; the server inserts in completion
/// order and documents that its file bytes are not.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_CACHE_ANALYSISCACHE_H
#define BEYONDIV_CACHE_ANALYSISCACHE_H

#include "ivclass/InductionAnalysis.h"
#include "ivclass/Report.h"
#include <cstdint>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <sys/types.h>
#include <vector>

namespace biv {
namespace cache {

/// Bump whenever ivclass / dependence / transform semantics change (new
/// classification kinds, different closed forms, report format edits...):
/// every existing cache file becomes stale at once.  tools/check_docs.sh
/// cross-checks this constant against the value DESIGN.md documents.
inline constexpr uint64_t AnalysisVersionSalt = 3;

/// On-disk format revision (layout, not analysis semantics).  v2 added the
/// generation counter to the tail footer (fleet-shared caches).
inline constexpr uint64_t CacheFormatVersion = 2;

/// 64-bit FNV-1a over \p Data, continuing from \p Seed (the offset basis by
/// default).  Never returns 0 -- 0 marks an empty index slot.
uint64_t fnv1a(const std::string &Data,
               uint64_t Seed = 0xcbf29ce484222325ull);

/// The cache key for one unit: canonical IR print x salt x the pipeline
/// options that change result bytes (packed by the caller into \p OptsBits).
uint64_t unitDigest(const std::string &CanonicalIR, uint64_t OptsBits);

/// The cached payload for one function (everything a batch UnitResult
/// carries besides its name and live stats frame).
struct CacheEntry {
  std::string ReportText;
  ivclass::InductionAnalysis::Stats Stats;
  ivclass::KindCounts Kinds;
  uint64_t Instructions = 0;
  uint64_t Loops = 0;
  /// The unit's analysis-phase counter deltas by name (frontend counters
  /// excluded: a hit re-parses, so those fire live).  Replayed into the
  /// worker's frame on hit, keeping merged counters corpus-shaped whether
  /// the work ran or was served.
  std::map<std::string, uint64_t> Counters;

  std::string serialize() const;
  /// Returns false (leaving *this partially filled) on malformed bytes.
  bool deserialize(const std::string &Bytes);
};

class AnalysisCache {
public:
  AnalysisCache() = default;
  ~AnalysisCache();
  AnalysisCache(const AnalysisCache &) = delete;
  AnalysisCache &operator=(const AnalysisCache &) = delete;

  /// Binds the cache to \p Path, maps it, and parses the index (entry
  /// payloads stay on disk until looked up).  A missing file is an empty
  /// cache (first cold run); a file with a stale salt/format or any
  /// structural damage is discarded and reported via invalidated().
  /// Returns false only for real I/O errors (unreadable existing file),
  /// with \p Error filled.
  bool open(const std::string &Path, std::string &Error);

  /// Caps the on-disk file size: a save() whose result would exceed
  /// \p Bytes compacts, keeping the most recently used entries that fit.
  /// 0 (the default) means unbounded.
  void setMaxBytes(uint64_t Bytes);

  /// The entry for \p Digest, or null.  Pending (inserted, unsaved) entries
  /// are visible; on-disk entries materialize from the mapping on first
  /// use.  Safe to call from many threads, concurrently with insert(); the
  /// returned pointer stays valid until the next open().  A disk entry
  /// whose payload fails to deserialize invalidates the disk index
  /// wholesale and misses -- the cache may forget, never lie.
  const CacheEntry *lookup(uint64_t Digest);

  /// Records \p E under \p Digest, to be appended by the next save().
  /// Duplicate digests keep the first entry (content-addressed: same key,
  /// same bytes).  Takes the exclusive lock, so concurrent inserts and
  /// lookups are safe; insertion *order* is whatever the callers make it.
  void insert(uint64_t Digest, CacheEntry E);

  /// Appends pending entries and rewrites the index footer (or writes the
  /// whole file fresh after invalidation) under an advisory flock,
  /// merging with any progress other processes made since open(), and
  /// compacting when the result would exceed the byte cap.  Returns false
  /// with \p Error set when the path cannot be written -- callers must
  /// treat that as a hard error, not a silent success.  No-op when nothing
  /// is pending, the file is intact, and no compaction is due.
  bool save(std::string &Error);

  /// Cheap cross-process staleness probe: stats the path and, when another
  /// process appended or compacted since our view was loaded, re-maps and
  /// adopts the new index (pending inserts and already-materialized
  /// entries are kept).  Returns true when the view changed.  A torn or
  /// damaged on-disk state is skipped (retry later), not adopted.
  bool refreshIfChanged();

  /// Distinct digests this cache can currently serve (disk index plus
  /// in-memory inserts).
  size_t entryCount() const;
  size_t pendingCount() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return PendingLog.size();
  }
  /// True when open() found a file it had to discard (stale salt, damage)
  /// or a lazy probe hit a corrupt payload.
  bool invalidated() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return Invalidated;
  }
  /// The on-disk generation our view was loaded from (0 = no valid file).
  uint64_t generation() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return Generation;
  }
  /// Compactions this process performed over the file's lifetime.
  uint64_t compactions() const {
    std::shared_lock<std::shared_mutex> Lock(M);
    return NumCompactions;
  }

private:
  struct ParsedImage;
  static bool parseImage(const char *Data, size_t Size, ParsedImage &Img);
  bool adoptImage(const char *Data, size_t Size, const ParsedImage &Img);
  void discardDiskLocked();
  void unmapLocked();
  uint64_t accessOf(uint64_t Digest) const;
  void touch(uint64_t Digest);

  std::string Path;
  /// Readers (lookup, counts) shared; open/insert/save exclusive.
  mutable std::shared_mutex M;
  /// digest -> entry: pending inserts plus disk entries materialized by
  /// lookup().  Node-based map; nodes are never erased while open.
  std::map<uint64_t, CacheEntry> Entries;
  /// digest -> absolute file offset of the entry record in the current
  /// mapping, mirroring the on-disk index.
  std::map<uint64_t, uint64_t> DiskOffsets;
  /// Serialized records not yet on disk, in insertion order (so the file
  /// bytes are deterministic for any worker count).
  std::vector<std::pair<uint64_t, std::string>> PendingLog;
  /// Bytes of valid header + entry log on disk (new entries append here,
  /// overwriting the old footer); 0 = no valid file, save() writes fresh.
  uint64_t DiskLogEnd = 0;
  uint64_t Generation = 0;   ///< tail generation of our loaded view
  uint64_t MaxBytes = 0;     ///< 0 = unbounded
  uint64_t NumCompactions = 0;
  bool Invalidated = false;  ///< disk content was discarded

  /// Read-only mapping of the file as of the last open/refresh/save.
  const char *MapBase = nullptr;
  size_t MapLen = 0;
  dev_t MapDev = 0;
  ino_t MapIno = 0;

  /// LRU-ish recency: per-digest access stamps, bumped on hit and insert.
  /// Own mutex so shared-lock readers can stamp without the big lock.
  mutable std::mutex AccessM;
  std::map<uint64_t, uint64_t> AccessSeq;
  uint64_t AccessClock = 0;
};

} // namespace cache
} // namespace biv

#endif // BEYONDIV_CACHE_ANALYSISCACHE_H
