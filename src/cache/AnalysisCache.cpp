//===- cache/AnalysisCache.cpp - Content-addressed analysis cache --------------===//

#include "cache/AnalysisCache.h"
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace biv;
using namespace biv::cache;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

uint64_t biv::cache::fnv1a(const std::string &Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  // 0 marks an empty index slot; remap the (astronomically unlikely) zero
  // digest to an arbitrary nonzero constant.
  return H ? H : 0x9e3779b97f4a7c15ull;
}

uint64_t biv::cache::unitDigest(const std::string &CanonicalIR,
                                uint64_t OptsBits) {
  // The salt also lives in the file header (wholesale invalidation on load);
  // folding it into the digest as well means even a hand-spliced entry from
  // an old cache cannot be served.
  std::string Pre = "biv-cache fmt " + std::to_string(CacheFormatVersion) +
                    " salt " + std::to_string(AnalysisVersionSalt) +
                    " opts " + std::to_string(OptsBits) + "\n";
  return fnv1a(CanonicalIR, fnv1a(Pre));
}

//===----------------------------------------------------------------------===//
// Entry (de)serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t Magic1 = 0x6269762d63616368ull; // "biv-cach"
constexpr uint64_t Magic2 = 0x6863616325646e65ull; // "end%cach"
constexpr size_t HeaderBytes = 24;
// [index_off][count][generation][magic2] -- v2 grew the tail by the
// generation word; the header is frozen (salt at offset 16, format at 8).
constexpr size_t TailBytes = 32;
constexpr size_t RecordHeaderBytes = 16; // [digest][len]

void putU64(std::string &Out, uint64_t V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

bool getU64(const char *Data, size_t Size, size_t &Pos, uint64_t &V) {
  if (Pos + sizeof(V) > Size)
    return false;
  std::memcpy(&V, Data + Pos, sizeof(V));
  Pos += sizeof(V);
  return true;
}

bool getU64(const std::string &In, size_t &Pos, uint64_t &V) {
  return getU64(In.data(), In.size(), Pos, V);
}

bool getBytes(const std::string &In, size_t &Pos, size_t Len,
              std::string &V) {
  if (Pos + Len > In.size() || Pos + Len < Pos)
    return false;
  V.assign(In.data() + Pos, Len);
  Pos += Len;
  return true;
}

} // namespace

std::string CacheEntry::serialize() const {
  std::string Out;
  putU64(Out, ReportText.size());
  Out += ReportText;
  const uint64_t StatFields[] = {
      Stats.Regions,         Stats.LinearFamilies,  Stats.PolynomialFamilies,
      Stats.GeometricFamilies, Stats.PeriodicFamilies, Stats.WrapArounds,
      Stats.MonotonicRegions,  Stats.UnknownRegions,
      Stats.ExitValuesMaterialized};
  for (uint64_t V : StatFields)
    putU64(Out, V);
  const uint64_t KindFields[] = {Kinds.Linear,        Kinds.Polynomial,
                                 Kinds.Geometric,     Kinds.CFinite,
                                 Kinds.WrapAround,    Kinds.Periodic,
                                 Kinds.Monotonic,     Kinds.PhasePeriodic,
                                 Kinds.Invariant,     Kinds.Unknown,
                                 Kinds.Partial};
  for (uint64_t V : KindFields)
    putU64(Out, V);
  putU64(Out, Instructions);
  putU64(Out, Loops);
  putU64(Out, Counters.size());
  for (const auto &[Name, V] : Counters) { // std::map: sorted, so stable.
    putU64(Out, Name.size());
    Out += Name;
    putU64(Out, V);
  }
  return Out;
}

bool CacheEntry::deserialize(const std::string &Bytes) {
  size_t Pos = 0;
  uint64_t Len = 0;
  if (!getU64(Bytes, Pos, Len) || !getBytes(Bytes, Pos, size_t(Len),
                                            ReportText))
    return false;
  uint64_t StatFields[9];
  for (uint64_t &V : StatFields)
    if (!getU64(Bytes, Pos, V))
      return false;
  Stats.Regions = unsigned(StatFields[0]);
  Stats.LinearFamilies = unsigned(StatFields[1]);
  Stats.PolynomialFamilies = unsigned(StatFields[2]);
  Stats.GeometricFamilies = unsigned(StatFields[3]);
  Stats.PeriodicFamilies = unsigned(StatFields[4]);
  Stats.WrapArounds = unsigned(StatFields[5]);
  Stats.MonotonicRegions = unsigned(StatFields[6]);
  Stats.UnknownRegions = unsigned(StatFields[7]);
  Stats.ExitValuesMaterialized = unsigned(StatFields[8]);
  uint64_t KindFields[11];
  for (uint64_t &V : KindFields)
    if (!getU64(Bytes, Pos, V))
      return false;
  Kinds.Linear = unsigned(KindFields[0]);
  Kinds.Polynomial = unsigned(KindFields[1]);
  Kinds.Geometric = unsigned(KindFields[2]);
  Kinds.CFinite = unsigned(KindFields[3]);
  Kinds.WrapAround = unsigned(KindFields[4]);
  Kinds.Periodic = unsigned(KindFields[5]);
  Kinds.Monotonic = unsigned(KindFields[6]);
  Kinds.PhasePeriodic = unsigned(KindFields[7]);
  Kinds.Invariant = unsigned(KindFields[8]);
  Kinds.Unknown = unsigned(KindFields[9]);
  Kinds.Partial = unsigned(KindFields[10]);
  if (!getU64(Bytes, Pos, Instructions) || !getU64(Bytes, Pos, Loops))
    return false;
  uint64_t NumCounters = 0;
  if (!getU64(Bytes, Pos, NumCounters))
    return false;
  Counters.clear();
  for (uint64_t I = 0; I < NumCounters; ++I) {
    uint64_t NameLen = 0, V = 0;
    std::string Name;
    if (!getU64(Bytes, Pos, NameLen) ||
        !getBytes(Bytes, Pos, size_t(NameLen), Name) ||
        !getU64(Bytes, Pos, V))
      return false;
    Counters[Name] = V;
  }
  return Pos == Bytes.size();
}

//===----------------------------------------------------------------------===//
// Image parsing (structural validation, payloads stay lazy)
//===----------------------------------------------------------------------===//

struct AnalysisCache::ParsedImage {
  uint64_t IndexOff = 0;   // header + entry log end
  uint64_t Generation = 0;
  std::map<uint64_t, uint64_t> Offsets; // digest -> record offset
};

/// Validates the header, tail, index, and every record *frame* (digest echo
/// and length bounds) of a cache image without deserializing payloads.
/// Returns false on any structural damage.
bool AnalysisCache::parseImage(const char *Data, size_t Size,
                               ParsedImage &Img) {
  if (Size < HeaderBytes + TailBytes)
    return false;
  size_t Pos = 0;
  uint64_t M1 = 0, Fmt = 0, Salt = 0;
  getU64(Data, Size, Pos, M1);
  getU64(Data, Size, Pos, Fmt);
  getU64(Data, Size, Pos, Salt);
  if (M1 != Magic1 || Fmt != CacheFormatVersion ||
      Salt != AnalysisVersionSalt)
    return false;

  size_t TailPos = Size - TailBytes;
  uint64_t IndexOff = 0, Count = 0, Gen = 0, M2 = 0;
  getU64(Data, Size, TailPos, IndexOff);
  getU64(Data, Size, TailPos, Count);
  getU64(Data, Size, TailPos, Gen);
  getU64(Data, Size, TailPos, M2);
  if (M2 != Magic2 || Gen == 0 || IndexOff < HeaderBytes ||
      IndexOff + 8 > Size - TailBytes)
    return false;

  size_t IdxPos = size_t(IndexOff);
  uint64_t Capacity = 0;
  getU64(Data, Size, IdxPos, Capacity);
  // The index + tail must end the file exactly.
  if (Capacity > (Size / 16) ||
      IdxPos + Capacity * 16 + TailBytes != Size)
    return false;

  uint64_t Seen = 0;
  for (uint64_t Slot = 0; Slot < Capacity; ++Slot) {
    uint64_t Digest = 0, Off = 0;
    getU64(Data, Size, IdxPos, Digest);
    getU64(Data, Size, IdxPos, Off);
    if (Digest == 0)
      continue;
    ++Seen;
    size_t RecPos = size_t(Off);
    uint64_t RecDigest = 0, RecLen = 0;
    if (Off < HeaderBytes || Off >= IndexOff ||
        !getU64(Data, Size, RecPos, RecDigest) || RecDigest != Digest ||
        !getU64(Data, Size, RecPos, RecLen) || RecLen > IndexOff - RecPos)
      return false;
    if (!Img.Offsets.emplace(Digest, Off).second)
      return false; // Duplicate digest: the index is corrupt.
  }
  if (Seen != Count)
    return false;

  Img.IndexOff = IndexOff;
  Img.Generation = Gen;
  return true;
}

namespace {

/// Serialized byte size of a complete image holding \p N records of
/// \p RecordBytes total (frames included): header + log + index + tail.
uint64_t imageBytes(size_t N, uint64_t RecordBytes) {
  uint64_t Capacity = 8;
  while (Capacity < uint64_t(N) * 2)
    Capacity *= 2;
  return HeaderBytes + RecordBytes + 8 + Capacity * 16 + TailBytes;
}

/// Builds the pow2 open-addressed index (<50% load) + tail for the given
/// offset table.
std::string buildFooter(const std::map<uint64_t, uint64_t> &Offsets,
                        uint64_t LogEnd, uint64_t Generation) {
  uint64_t Capacity = 8;
  while (Capacity < Offsets.size() * 2)
    Capacity *= 2;
  std::vector<std::pair<uint64_t, uint64_t>> Slots(size_t(Capacity), {0, 0});
  for (const auto &[Digest, Off] : Offsets) {
    uint64_t Slot = Digest & (Capacity - 1);
    while (Slots[size_t(Slot)].first != 0)
      Slot = (Slot + 1) & (Capacity - 1);
    Slots[size_t(Slot)] = {Digest, Off};
  }
  std::string Footer;
  putU64(Footer, Capacity);
  for (const auto &[Digest, Off] : Slots) {
    putU64(Footer, Digest);
    putU64(Footer, Off);
  }
  putU64(Footer, LogEnd);         // index_off
  putU64(Footer, Offsets.size()); // count
  putU64(Footer, Generation);
  putU64(Footer, Magic2);
  return Footer;
}

bool writeAllAt(int Fd, uint64_t Off, const char *Buf, size_t Len) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::pwrite(Fd, Buf + Done, Len - Done, off_t(Off + Done));
    if (N > 0) {
      Done += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool readWholeFile(int Fd, uint64_t Size, std::string &Out) {
  Out.resize(size_t(Size));
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::pread(Fd, Out.data() + Done, size_t(Size) - Done,
                        off_t(Done));
    if (N > 0) {
      Done += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false; // Short file or hard error: caller treats as damage.
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Cache lifecycle
//===----------------------------------------------------------------------===//

AnalysisCache::~AnalysisCache() {
  std::unique_lock<std::shared_mutex> Lock(M);
  unmapLocked();
}

void AnalysisCache::unmapLocked() {
  if (MapBase) {
    ::munmap(const_cast<char *>(MapBase), MapLen);
    MapBase = nullptr;
    MapLen = 0;
    MapDev = 0;
    MapIno = 0;
  }
}

void AnalysisCache::setMaxBytes(uint64_t Bytes) {
  std::unique_lock<std::shared_mutex> Lock(M);
  MaxBytes = Bytes;
}

void AnalysisCache::touch(uint64_t Digest) {
  std::lock_guard<std::mutex> G(AccessM);
  AccessSeq[Digest] = ++AccessClock;
}

uint64_t AnalysisCache::accessOf(uint64_t Digest) const {
  std::lock_guard<std::mutex> G(AccessM);
  auto It = AccessSeq.find(Digest);
  return It == AccessSeq.end() ? 0 : It->second;
}

bool AnalysisCache::adoptImage(const char *Data, size_t Size,
                               const ParsedImage &Img) {
  // Caller holds the exclusive lock and hands us a fresh mapping it owns;
  // we take it over.  Materialized entries and pending inserts are kept --
  // content-addressing makes any overlap byte-identical.
  unmapLocked();
  MapBase = Data;
  MapLen = Size;
  DiskOffsets = Img.Offsets;
  DiskLogEnd = Img.IndexOff;
  Generation = Img.Generation;
  return true;
}

void AnalysisCache::discardDiskLocked() {
  // Forget the on-disk index but keep every node in Entries: lookup()
  // pointers handed out earlier must stay valid until the next open().
  DiskOffsets.clear();
  DiskLogEnd = 0;
  Generation = 0;
  Invalidated = true;
}

bool AnalysisCache::open(const std::string &P, std::string &Error) {
  std::unique_lock<std::shared_mutex> Lock(M);
  Path = P;
  Entries.clear();
  DiskOffsets.clear();
  PendingLog.clear();
  DiskLogEnd = 0;
  Generation = 0;
  Invalidated = false;
  unmapLocked();
  {
    std::lock_guard<std::mutex> G(AccessM);
    AccessSeq.clear();
  }

  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    if (errno == ENOENT)
      return true; // First run: empty cache, created by save().
    Error = "cannot read cache file '" + Path + "'";
    return false;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    Error = "cannot read cache file '" + Path + "'";
    return false;
  }
  if (uint64_t(St.st_size) < HeaderBytes + TailBytes) {
    // Too short to be a cache (including zero-length): structural damage.
    ::close(Fd);
    Invalidated = true;
    return true;
  }

  void *Base = ::mmap(nullptr, size_t(St.st_size), PROT_READ, MAP_SHARED,
                      Fd, 0);
  ::close(Fd); // The mapping keeps the file alive.
  if (Base == MAP_FAILED) {
    Error = "cannot map cache file '" + Path + "'";
    return false;
  }

  ParsedImage Img;
  if (!parseImage(static_cast<const char *>(Base), size_t(St.st_size),
                  Img)) {
    ::munmap(Base, size_t(St.st_size));
    Invalidated = true;
    return true;
  }
  adoptImage(static_cast<const char *>(Base), size_t(St.st_size), Img);
  MapDev = St.st_dev;
  MapIno = St.st_ino;
  return true;
}

const CacheEntry *AnalysisCache::lookup(uint64_t Digest) {
  {
    std::shared_lock<std::shared_mutex> Lock(M);
    auto It = Entries.find(Digest);
    if (It != Entries.end()) {
      // The pointer outlives the lock: map nodes are stable and entries
      // are never erased while the cache is open.
      touch(Digest);
      return &It->second;
    }
    if (!DiskOffsets.count(Digest))
      return nullptr;
  }

  // Materialize from the mapping under the exclusive lock.
  std::unique_lock<std::shared_mutex> Lock(M);
  auto It = Entries.find(Digest);
  if (It != Entries.end()) { // Raced another materializer.
    touch(Digest);
    return &It->second;
  }
  auto OffIt = DiskOffsets.find(Digest);
  if (OffIt == DiskOffsets.end())
    return nullptr; // Invalidated (or refreshed away) while we upgraded.
  size_t Pos = size_t(OffIt->second);
  uint64_t RecDigest = 0, RecLen = 0;
  std::string Payload;
  CacheEntry E;
  // The frame was bounds-checked at parse time; the payload is validated
  // here, on first use.  Any mismatch means the file lied: drop the whole
  // disk index rather than risk another entry.
  if (!getU64(MapBase, MapLen, Pos, RecDigest) || RecDigest != Digest ||
      !getU64(MapBase, MapLen, Pos, RecLen) || Pos + RecLen > MapLen) {
    discardDiskLocked();
    return nullptr;
  }
  Payload.assign(MapBase + Pos, size_t(RecLen));
  if (!E.deserialize(Payload)) {
    discardDiskLocked();
    return nullptr;
  }
  auto [NewIt, Inserted] = Entries.emplace(Digest, std::move(E));
  (void)Inserted;
  touch(Digest);
  return &NewIt->second;
}

void AnalysisCache::insert(uint64_t Digest, CacheEntry E) {
  // Serialize outside the lock; writers contend only on the map touch.
  std::string Record;
  std::string Payload = E.serialize();
  putU64(Record, Digest);
  putU64(Record, Payload.size());
  Record += Payload;
  std::unique_lock<std::shared_mutex> Lock(M);
  if (Entries.count(Digest))
    return; // Content-addressed: same key, same bytes.
  if (DiskOffsets.count(Digest)) {
    // Already on disk (another process landed it, or ours pre-refresh):
    // nothing to append, and lookup() will materialize the disk copy.
    return;
  }
  PendingLog.emplace_back(Digest, std::move(Record));
  Entries.emplace(Digest, std::move(E));
  touch(Digest);
}

size_t AnalysisCache::entryCount() const {
  std::shared_lock<std::shared_mutex> Lock(M);
  size_t N = DiskOffsets.size();
  for (const auto &[Digest, E] : Entries)
    if (!DiskOffsets.count(Digest))
      ++N;
  return N;
}

bool AnalysisCache::refreshIfChanged() {
  struct stat St;
  {
    std::shared_lock<std::shared_mutex> Lock(M);
    if (Path.empty())
      return false;
    if (::stat(Path.c_str(), &St) != 0)
      return false; // Gone or unreadable: keep our snapshot.
    if (MapBase && St.st_dev == MapDev && St.st_ino == MapIno &&
        uint64_t(St.st_size) == MapLen)
      return false; // Unchanged.
  }

  // Map and validate the new image before touching shared state, so a torn
  // concurrent append is skipped, not adopted.
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  if (::fstat(Fd, &St) != 0 ||
      uint64_t(St.st_size) < HeaderBytes + TailBytes) {
    ::close(Fd);
    return false;
  }
  void *Base = ::mmap(nullptr, size_t(St.st_size), PROT_READ, MAP_SHARED,
                      Fd, 0);
  ::close(Fd);
  if (Base == MAP_FAILED)
    return false;
  ParsedImage Img;
  if (!parseImage(static_cast<const char *>(Base), size_t(St.st_size),
                  Img)) {
    ::munmap(Base, size_t(St.st_size));
    return false;
  }

  std::unique_lock<std::shared_mutex> Lock(M);
  if (Img.Generation == Generation && Img.IndexOff == DiskLogEnd &&
      St.st_dev == MapDev && St.st_ino == MapIno) {
    ::munmap(Base, size_t(St.st_size));
    return false; // Raced a concurrent refresh to the same view.
  }
  adoptImage(static_cast<const char *>(Base), size_t(St.st_size), Img);
  MapDev = St.st_dev;
  MapIno = St.st_ino;
  return true;
}

//===----------------------------------------------------------------------===//
// Save: flock'd append, merge-on-conflict, compaction under the byte cap
//===----------------------------------------------------------------------===//

bool AnalysisCache::save(std::string &Error) {
  std::unique_lock<std::shared_mutex> Lock(M);
  if (Path.empty()) {
    Error = "cache not opened";
    return false;
  }
  // No-op fast path: nothing to contribute and the on-disk file is intact
  // and under the cap (append-only growth means our loaded size bounds it
  // from our side; another process pushing it over will compact on *its*
  // save).  Must not touch the file at all -- callers rely on mtime/size
  // staying put.
  if (PendingLog.empty() && DiskLogEnd != 0 &&
      (MaxBytes == 0 || MapLen <= MaxBytes))
    return true;

  // --- Acquire the appender lock, chasing compaction renames. -------------
  int Fd = -1;
  struct stat FdSt;
  for (int Attempt = 0; Attempt < 10; ++Attempt) {
    Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (Fd < 0) {
      Error = "cannot write cache file '" + Path + "': " +
              std::strerror(errno);
      return false;
    }
    while (::flock(Fd, LOCK_EX) != 0) {
      if (errno != EINTR) {
        ::close(Fd);
        Error = "cannot lock cache file '" + Path + "': " +
                std::strerror(errno);
        return false;
      }
    }
    // A compactor may have renamed a fresh inode over the path while we
    // waited; our lock would then guard a dead file.  Re-check identity.
    struct stat PathSt;
    if (::fstat(Fd, &FdSt) == 0 && ::stat(Path.c_str(), &PathSt) == 0 &&
        FdSt.st_dev == PathSt.st_dev && FdSt.st_ino == PathSt.st_ino)
      break;
    ::close(Fd); // Releases the lock; retry on the new inode.
    Fd = -1;
  }
  if (Fd < 0) {
    Error = "cannot lock cache file '" + Path + "' (compaction storm)";
    return false;
  }

  // --- Re-read the locked file and merge any cross-process progress. ------
  std::string Disk;
  ParsedImage DiskImg;
  bool DiskValid = false;
  if (uint64_t(FdSt.st_size) >= HeaderBytes + TailBytes &&
      readWholeFile(Fd, uint64_t(FdSt.st_size), Disk))
    DiskValid = parseImage(Disk.data(), Disk.size(), DiskImg);

  if (DiskValid) {
    if (DiskImg.Generation != Generation || DiskImg.IndexOff != DiskLogEnd) {
      // Another appender (or a compaction) advanced the file: adopt the
      // disk truth.  Entries materialized from our old mapping stay valid
      // (content-addressed), and pending inserts the disk already has are
      // dropped below.
      DiskOffsets = DiskImg.Offsets;
      DiskLogEnd = DiskImg.IndexOff;
      Generation = DiskImg.Generation;
    }
  } else {
    // Empty (just created) or damaged by a torn writer: rewrite fresh from
    // everything this process knows.  Entries never materialized are lost
    // -- wholesale invalidation, never a corrupt hit.
    if (FdSt.st_size != 0)
      Invalidated = true;
    DiskOffsets.clear();
    DiskLogEnd = 0;
    Generation = 0;
    Disk.clear();
  }

  // --- Lay out the records to append. -------------------------------------
  // Fresh mode additionally re-serializes every in-memory entry, in digest
  // order so the file bytes are deterministic for any worker count.
  std::vector<std::pair<uint64_t, std::string>> Append;
  if (DiskLogEnd == 0) {
    for (const auto &[Digest, E] : Entries) {
      std::string Record;
      std::string Payload = E.serialize();
      putU64(Record, Digest);
      putU64(Record, Payload.size());
      Record += Payload;
      Append.emplace_back(Digest, std::move(Record));
    }
  } else {
    for (auto &[Digest, Record] : PendingLog)
      if (!DiskOffsets.count(Digest))
        Append.emplace_back(Digest, Record);
  }

  uint64_t LogEnd = DiskLogEnd ? DiskLogEnd : HeaderBytes;
  std::map<uint64_t, uint64_t> NewOffsets = DiskOffsets;
  std::string NewLog;
  if (DiskLogEnd == 0) {
    putU64(NewLog, Magic1);
    putU64(NewLog, CacheFormatVersion);
    putU64(NewLog, AnalysisVersionSalt);
  }
  for (const auto &[Digest, Record] : Append) {
    NewOffsets[Digest] = LogEnd;
    NewLog += Record;
    LogEnd += Record.size();
  }

  uint64_t NewGen = Generation + 1;
  std::string Footer = buildFooter(NewOffsets, LogEnd, NewGen);
  uint64_t FinalSize = LogEnd + Footer.size();

  auto Fail = [&](const char *What) {
    ::close(Fd);
    Error = std::string(What) + " cache file '" + Path + "': " +
            std::strerror(errno);
    return false;
  };

  if (MaxBytes != 0 && FinalSize > MaxBytes) {
    // --- Compact: rewrite to a temp file keeping the most recently used
    // entries that fit, then atomically rename into place.  Live readers
    // keep their old inode; the bumped generation (and new inode) flags
    // the swap for refreshIfChanged().
    struct Survivor {
      uint64_t Digest;
      uint64_t Access;
      uint64_t DiskOff;  // record offset in Disk, or ~0 when appended...
      uint64_t RecLen;
      std::string Owned; // ...with the record bytes owned here instead
      const char *rec(const std::string &Disk) const {
        return DiskOff == ~0ull ? Owned.data() : Disk.data() + DiskOff;
      }
    };
    std::vector<Survivor> Cands;
    for (const auto &[Digest, Off] : NewOffsets) {
      Survivor S;
      S.Digest = Digest;
      S.Access = accessOf(Digest);
      if (Off >= DiskLogEnd || DiskLogEnd == 0) {
        // Appended this save: find it in Append (small; linear is fine).
        S.DiskOff = ~0ull;
        for (const auto &[D, Record] : Append)
          if (D == Digest) {
            S.Owned = Record;
            break;
          }
        S.RecLen = S.Owned.size();
      } else {
        size_t Pos = size_t(Off) + 8; // skip digest, read len
        uint64_t RecLen = 0;
        getU64(Disk.data(), Disk.size(), Pos, RecLen);
        S.DiskOff = Off;
        S.RecLen = RecordHeaderBytes + RecLen;
      }
      Cands.push_back(std::move(S));
    }
    // Most recently used first; ties (never touched) by digest for
    // determinism.
    std::sort(Cands.begin(), Cands.end(),
              [](const Survivor &A, const Survivor &B) {
                if (A.Access != B.Access)
                  return A.Access > B.Access;
                return A.Digest < B.Digest;
              });
    std::vector<const Survivor *> Keep;
    uint64_t KeptBytes = 0;
    for (const Survivor &S : Cands) {
      if (imageBytes(Keep.size() + 1, KeptBytes + S.RecLen) > MaxBytes)
        continue; // Doesn't fit; a smaller, colder entry later still might.
      Keep.push_back(&S);
      KeptBytes += S.RecLen;
    }
    // Rebuild the image: header, surviving records in digest order (the
    // on-disk order is a cache artifact; keep it canonical), index, tail.
    std::sort(Keep.begin(), Keep.end(),
              [](const Survivor *A, const Survivor *B) {
                return A->Digest < B->Digest;
              });
    std::string Image;
    putU64(Image, Magic1);
    putU64(Image, CacheFormatVersion);
    putU64(Image, AnalysisVersionSalt);
    std::map<uint64_t, uint64_t> KeptOffsets;
    for (const Survivor *S : Keep) {
      KeptOffsets[S->Digest] = Image.size();
      Image.append(S->rec(Disk), size_t(S->RecLen));
    }
    uint64_t KeptLogEnd = Image.size();
    Image += buildFooter(KeptOffsets, KeptLogEnd, NewGen);

    std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
    int TFd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                     0644);
    if (TFd < 0)
      return Fail("cannot write");
    if (!writeAllAt(TFd, 0, Image.data(), Image.size()) ||
        ::fsync(TFd) != 0) {
      ::close(TFd);
      ::unlink(Tmp.c_str());
      return Fail("cannot write");
    }
    ::close(TFd);
    if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
      ::unlink(Tmp.c_str());
      return Fail("cannot replace");
    }
    ::close(Fd); // Releases the flock held on the now-unlinked inode.
    ++NumCompactions;

    // Adopt the compacted view.  Entries evicted from disk stay usable in
    // memory (node stability) but will re-append on a future save only if
    // re-inserted; PendingLog is spent either way.
    ParsedImage KeptImg;
    KeptImg.IndexOff = KeptLogEnd;
    KeptImg.Generation = NewGen;
    KeptImg.Offsets = KeptOffsets;

    int RFd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    struct stat RSt;
    void *Base = MAP_FAILED;
    if (RFd >= 0 && ::fstat(RFd, &RSt) == 0)
      Base = ::mmap(nullptr, size_t(RSt.st_size), PROT_READ, MAP_SHARED,
                    RFd, 0);
    if (RFd >= 0)
      ::close(RFd);
    if (Base == MAP_FAILED) {
      // We wrote it; failing to map our own file is a hard error.
      Error = "cannot map cache file '" + Path + "'";
      return false;
    }
    adoptImage(static_cast<const char *>(Base), size_t(RSt.st_size),
               KeptImg);
    MapDev = RSt.st_dev;
    MapIno = RSt.st_ino;
    PendingLog.clear();
    Invalidated = false;
    return true;
  }

  // --- Plain append: records from DiskLogEnd, then the new footer. --------
  uint64_t WriteOff = DiskLogEnd ? DiskLogEnd : 0;
  if (!writeAllAt(Fd, WriteOff, NewLog.data(), NewLog.size()) ||
      !writeAllAt(Fd, LogEnd, Footer.data(), Footer.size()))
    return Fail("cannot write");
  // An append never shrinks the file (the new footer indexes a superset of
  // the old), but trim defensively so a logic change can't leave trailing
  // garbage.
  if (uint64_t(FdSt.st_size) > FinalSize)
    if (::ftruncate(Fd, off_t(FinalSize)) != 0)
      return Fail("cannot truncate");
  ::close(Fd);

  // Remap so lazy lookups can serve what we just wrote.
  int RFd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  struct stat RSt;
  void *Base = MAP_FAILED;
  if (RFd >= 0 && ::fstat(RFd, &RSt) == 0)
    Base = ::mmap(nullptr, size_t(RSt.st_size), PROT_READ, MAP_SHARED, RFd,
                  0);
  if (RFd >= 0)
    ::close(RFd);
  if (Base == MAP_FAILED) {
    Error = "cannot map cache file '" + Path + "'";
    return false;
  }
  ParsedImage NewImg;
  NewImg.IndexOff = LogEnd;
  NewImg.Generation = NewGen;
  NewImg.Offsets = NewOffsets;
  adoptImage(static_cast<const char *>(Base), size_t(RSt.st_size), NewImg);
  MapDev = RSt.st_dev;
  MapIno = RSt.st_ino;
  PendingLog.clear();
  Invalidated = false;
  return true;
}
