//===- cache/AnalysisCache.cpp - Content-addressed analysis cache --------------===//

#include "cache/AnalysisCache.h"
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <vector>

using namespace biv;
using namespace biv::cache;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

uint64_t biv::cache::fnv1a(const std::string &Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  // 0 marks an empty index slot; remap the (astronomically unlikely) zero
  // digest to an arbitrary nonzero constant.
  return H ? H : 0x9e3779b97f4a7c15ull;
}

uint64_t biv::cache::unitDigest(const std::string &CanonicalIR,
                                uint64_t OptsBits) {
  // The salt also lives in the file header (wholesale invalidation on load);
  // folding it into the digest as well means even a hand-spliced entry from
  // an old cache cannot be served.
  std::string Pre = "biv-cache fmt " + std::to_string(CacheFormatVersion) +
                    " salt " + std::to_string(AnalysisVersionSalt) +
                    " opts " + std::to_string(OptsBits) + "\n";
  return fnv1a(CanonicalIR, fnv1a(Pre));
}

//===----------------------------------------------------------------------===//
// Entry (de)serialization
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t Magic1 = 0x6269762d63616368ull; // "biv-cach"
constexpr uint64_t Magic2 = 0x6863616325646e65ull; // "end%cach"
constexpr size_t HeaderBytes = 24;
constexpr size_t TailBytes = 24;

void putU64(std::string &Out, uint64_t V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

bool getU64(const std::string &In, size_t &Pos, uint64_t &V) {
  if (Pos + sizeof(V) > In.size())
    return false;
  std::memcpy(&V, In.data() + Pos, sizeof(V));
  Pos += sizeof(V);
  return true;
}

bool getBytes(const std::string &In, size_t &Pos, size_t Len,
              std::string &V) {
  if (Pos + Len > In.size() || Pos + Len < Pos)
    return false;
  V.assign(In.data() + Pos, Len);
  Pos += Len;
  return true;
}

} // namespace

std::string CacheEntry::serialize() const {
  std::string Out;
  putU64(Out, ReportText.size());
  Out += ReportText;
  const uint64_t StatFields[] = {
      Stats.Regions,         Stats.LinearFamilies,  Stats.PolynomialFamilies,
      Stats.GeometricFamilies, Stats.PeriodicFamilies, Stats.WrapArounds,
      Stats.MonotonicRegions,  Stats.UnknownRegions,
      Stats.ExitValuesMaterialized};
  for (uint64_t V : StatFields)
    putU64(Out, V);
  const uint64_t KindFields[] = {Kinds.Linear,     Kinds.Polynomial,
                                 Kinds.Geometric,  Kinds.WrapAround,
                                 Kinds.Periodic,   Kinds.Monotonic,
                                 Kinds.Invariant,  Kinds.Unknown};
  for (uint64_t V : KindFields)
    putU64(Out, V);
  putU64(Out, Instructions);
  putU64(Out, Loops);
  putU64(Out, Counters.size());
  for (const auto &[Name, V] : Counters) { // std::map: sorted, so stable.
    putU64(Out, Name.size());
    Out += Name;
    putU64(Out, V);
  }
  return Out;
}

bool CacheEntry::deserialize(const std::string &Bytes) {
  size_t Pos = 0;
  uint64_t Len = 0;
  if (!getU64(Bytes, Pos, Len) || !getBytes(Bytes, Pos, size_t(Len),
                                            ReportText))
    return false;
  uint64_t StatFields[9];
  for (uint64_t &V : StatFields)
    if (!getU64(Bytes, Pos, V))
      return false;
  Stats.Regions = unsigned(StatFields[0]);
  Stats.LinearFamilies = unsigned(StatFields[1]);
  Stats.PolynomialFamilies = unsigned(StatFields[2]);
  Stats.GeometricFamilies = unsigned(StatFields[3]);
  Stats.PeriodicFamilies = unsigned(StatFields[4]);
  Stats.WrapArounds = unsigned(StatFields[5]);
  Stats.MonotonicRegions = unsigned(StatFields[6]);
  Stats.UnknownRegions = unsigned(StatFields[7]);
  Stats.ExitValuesMaterialized = unsigned(StatFields[8]);
  uint64_t KindFields[8];
  for (uint64_t &V : KindFields)
    if (!getU64(Bytes, Pos, V))
      return false;
  Kinds.Linear = unsigned(KindFields[0]);
  Kinds.Polynomial = unsigned(KindFields[1]);
  Kinds.Geometric = unsigned(KindFields[2]);
  Kinds.WrapAround = unsigned(KindFields[3]);
  Kinds.Periodic = unsigned(KindFields[4]);
  Kinds.Monotonic = unsigned(KindFields[5]);
  Kinds.Invariant = unsigned(KindFields[6]);
  Kinds.Unknown = unsigned(KindFields[7]);
  if (!getU64(Bytes, Pos, Instructions) || !getU64(Bytes, Pos, Loops))
    return false;
  uint64_t NumCounters = 0;
  if (!getU64(Bytes, Pos, NumCounters))
    return false;
  Counters.clear();
  for (uint64_t I = 0; I < NumCounters; ++I) {
    uint64_t NameLen = 0, V = 0;
    std::string Name;
    if (!getU64(Bytes, Pos, NameLen) ||
        !getBytes(Bytes, Pos, size_t(NameLen), Name) ||
        !getU64(Bytes, Pos, V))
      return false;
    Counters[Name] = V;
  }
  return Pos == Bytes.size();
}

//===----------------------------------------------------------------------===//
// Cache file
//===----------------------------------------------------------------------===//

bool AnalysisCache::open(const std::string &P, std::string &Error) {
  std::unique_lock<std::shared_mutex> Lock(M);
  Path = P;
  Entries.clear();
  Offsets.clear();
  PendingLog.clear();
  DiskLogEnd = 0;
  Invalidated = false;

  std::error_code EC;
  if (!std::filesystem::exists(Path, EC))
    return true; // First run: empty cache, created by save().

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot read cache file '" + Path + "'";
    return false;
  }
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    Error = "cannot read cache file '" + Path + "'";
    return false;
  }

  // Anything structurally wrong from here on discards the file: reopen
  // empty, remember why via Invalidated, let save() rewrite it.
  auto Discard = [&] {
    Entries.clear();
    Offsets.clear();
    DiskLogEnd = 0;
    Invalidated = true;
    return true;
  };

  if (Data.size() < HeaderBytes + TailBytes)
    return Discard();
  size_t Pos = 0;
  uint64_t M1 = 0, Fmt = 0, Salt = 0;
  getU64(Data, Pos, M1);
  getU64(Data, Pos, Fmt);
  getU64(Data, Pos, Salt);
  if (M1 != Magic1 || Fmt != CacheFormatVersion ||
      Salt != AnalysisVersionSalt)
    return Discard();

  size_t TailPos = Data.size() - TailBytes;
  uint64_t IndexOff = 0, Count = 0, M2 = 0;
  getU64(Data, TailPos, IndexOff);
  getU64(Data, TailPos, Count);
  getU64(Data, TailPos, M2);
  if (M2 != Magic2 || IndexOff < HeaderBytes ||
      IndexOff + 8 > Data.size() - TailBytes)
    return Discard();

  size_t IdxPos = size_t(IndexOff);
  uint64_t Capacity = 0;
  getU64(Data, IdxPos, Capacity);
  // The index + tail must end the file exactly.
  if (Capacity > (Data.size() / 16) ||
      IdxPos + Capacity * 16 + TailBytes != Data.size())
    return Discard();

  uint64_t Seen = 0;
  for (uint64_t Slot = 0; Slot < Capacity; ++Slot) {
    uint64_t Digest = 0, Off = 0;
    getU64(Data, IdxPos, Digest);
    getU64(Data, IdxPos, Off);
    if (Digest == 0)
      continue;
    ++Seen;
    size_t RecPos = size_t(Off);
    uint64_t RecDigest = 0, RecLen = 0;
    std::string Payload;
    if (Off < HeaderBytes || Off >= IndexOff ||
        !getU64(Data, RecPos, RecDigest) || RecDigest != Digest ||
        !getU64(Data, RecPos, RecLen) || RecPos + RecLen > IndexOff ||
        !getBytes(Data, RecPos, size_t(RecLen), Payload))
      return Discard();
    CacheEntry E;
    if (!E.deserialize(Payload))
      return Discard();
    if (!Entries.emplace(Digest, std::move(E)).second)
      return Discard(); // Duplicate digest: the log is corrupt.
    Offsets[Digest] = Off;
  }
  if (Seen != Count)
    return Discard();

  DiskLogEnd = IndexOff;
  return true;
}

const CacheEntry *AnalysisCache::lookup(uint64_t Digest) const {
  std::shared_lock<std::shared_mutex> Lock(M);
  auto It = Entries.find(Digest);
  // The pointer outlives the lock: map nodes are stable and entries are
  // never erased while the cache is open.
  return It == Entries.end() ? nullptr : &It->second;
}

void AnalysisCache::insert(uint64_t Digest, CacheEntry E) {
  // Serialize outside the lock; writers contend only on the map touch.
  std::string Record;
  std::string Payload = E.serialize();
  putU64(Record, Digest);
  putU64(Record, Payload.size());
  Record += Payload;
  std::unique_lock<std::shared_mutex> Lock(M);
  if (Entries.count(Digest))
    return; // Content-addressed: same key, same bytes.
  PendingLog.emplace_back(Digest, std::move(Record));
  Entries.emplace(Digest, std::move(E));
}

bool AnalysisCache::save(std::string &Error) {
  std::unique_lock<std::shared_mutex> Lock(M);
  if (Path.empty()) {
    Error = "cache not opened";
    return false;
  }
  if (PendingLog.empty() && DiskLogEnd != 0)
    return true; // Disk is intact and complete.

  // Lay out the new entry log region and final offsets.
  uint64_t LogEnd = DiskLogEnd ? DiskLogEnd : HeaderBytes;
  std::string NewLog;
  if (DiskLogEnd == 0) {
    // Fresh write: everything we know goes into the file.  After an
    // invalidation Entries holds only this run's inserts, so "everything"
    // is exactly the pending list -- but build from Entries so a fresh
    // save is always self-contained.
    Offsets.clear();
    putU64(NewLog, Magic1);
    putU64(NewLog, CacheFormatVersion);
    putU64(NewLog, AnalysisVersionSalt);
    for (const auto &[Digest, Rec] : PendingLog) {
      Offsets[Digest] = LogEnd;
      NewLog += Rec;
      LogEnd += Rec.size();
    }
  } else {
    for (const auto &[Digest, Rec] : PendingLog) {
      Offsets[Digest] = LogEnd;
      NewLog += Rec;
      LogEnd += Rec.size();
    }
  }

  // Open-addressed index sized to stay under 50% load, power of two so the
  // probe sequence is a simple mask.
  uint64_t Capacity = 8;
  while (Capacity < Offsets.size() * 2)
    Capacity *= 2;
  std::vector<std::pair<uint64_t, uint64_t>> Slots(size_t(Capacity),
                                                   {0, 0});
  for (const auto &[Digest, Off] : Offsets) {
    uint64_t Slot = Digest & (Capacity - 1);
    while (Slots[size_t(Slot)].first != 0)
      Slot = (Slot + 1) & (Capacity - 1);
    Slots[size_t(Slot)] = {Digest, Off};
  }
  std::string Footer;
  putU64(Footer, Capacity);
  for (const auto &[Digest, Off] : Slots) {
    putU64(Footer, Digest);
    putU64(Footer, Off);
  }
  putU64(Footer, LogEnd);              // index_off
  putU64(Footer, Offsets.size());      // count
  putU64(Footer, Magic2);

  bool Fresh = DiskLogEnd == 0;
  {
    std::ofstream Out;
    if (Fresh) {
      Out.open(Path, std::ios::binary | std::ios::trunc);
    } else {
      // in|out keeps the existing entry log; we overwrite from where the
      // old footer began.
      Out.open(Path, std::ios::binary | std::ios::in | std::ios::out);
      Out.seekp(std::streamoff(DiskLogEnd));
    }
    Out.write(NewLog.data(), std::streamsize(NewLog.size()));
    Out.write(Footer.data(), std::streamsize(Footer.size()));
    Out.flush();
    if (!Out) {
      Error = "cannot write cache file '" + Path + "'";
      return false;
    }
  }
  // An append never shrinks the file (the new footer indexes a superset),
  // but trim defensively so a logic change can't leave trailing garbage.
  std::error_code EC;
  uint64_t FinalSize = LogEnd + Footer.size();
  if (std::filesystem::file_size(Path, EC) > FinalSize && !EC)
    std::filesystem::resize_file(Path, FinalSize, EC);

  DiskLogEnd = LogEnd;
  PendingLog.clear();
  Invalidated = false;
  return true;
}
