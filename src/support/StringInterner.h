//===- support/StringInterner.h - Arena-backed string interner --*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier interning (DESIGN.md §11): every distinct spelling seen by a
/// unit is stored once in the unit's arena and addressed by a dense u32
/// Symbol.  Name equality becomes integer equality, name-keyed tables become
/// symbol-indexed vectors, and the string_views handed back stay valid for
/// the arena's lifetime.
///
/// Symbols are per-interner (per unit): they are assigned in first-touch
/// order, so for a fixed source text they are deterministic, but they must
/// never be compared across units.  Anything that crosses units (reports,
/// cache digests) goes through the spelling.
///
/// The table is open-addressed (power-of-two capacity, FNV-1a, linear
/// probing) with all storage -- entries, spellings -- in the arena.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_STRINGINTERNER_H
#define BEYONDIV_SUPPORT_STRINGINTERNER_H

#include "support/Arena.h"
#include <cstdint>
#include <string_view>

namespace biv {
namespace support {

/// Dense per-unit identifier handle; index into the owning interner.
using Symbol = uint32_t;

/// Sentinel for "no symbol" (empty/absent name).
inline constexpr Symbol NoSymbol = ~Symbol(0);

class StringInterner {
public:
  explicit StringInterner(Arena &A) : A(A) {}
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Interns \p S, returning its dense symbol (allocating on first touch).
  Symbol intern(std::string_view S) {
    if (Slots.empty())
      rehash(64);
    size_t Mask = Slots.size() - 1;
    size_t H = hash(S);
    for (size_t I = H & Mask;; I = (I + 1) & Mask) {
      uint32_t Slot = Slots[I];
      if (Slot == EmptySlot) {
        Symbol Sym = Symbol(Spellings.size());
        char *Copy = A.copyBytes(S.data(), S.size());
        Spellings.push_back(A, std::string_view(Copy, S.size()));
        Slots[I] = Sym;
        if ((Spellings.size() + 1) * 4 > Slots.size() * 3)
          rehash(Slots.size() * 2);
        return Sym;
      }
      if (Spellings[Slot] == S)
        return Slot;
    }
  }

  /// Interns \p S and returns the stable arena-backed spelling.
  std::string_view internView(std::string_view S) { return str(intern(S)); }

  /// Finds \p S without interning; NoSymbol when never seen.
  Symbol lookup(std::string_view S) const {
    if (Slots.empty())
      return NoSymbol;
    size_t Mask = Slots.size() - 1;
    for (size_t I = hash(S) & Mask;; I = (I + 1) & Mask) {
      uint32_t Slot = Slots[I];
      if (Slot == EmptySlot)
        return NoSymbol;
      if (Spellings[Slot] == S)
        return Slot;
    }
  }

  /// The spelling of \p Sym; stable for the arena's lifetime.
  std::string_view str(Symbol Sym) const {
    assert(Sym < Spellings.size() && "bad symbol");
    return Spellings[Sym];
  }

  /// Number of distinct spellings interned.
  size_t size() const { return Spellings.size(); }

  /// The arena backing this interner's storage.
  Arena &arena() const { return A; }

private:
  static constexpr uint32_t EmptySlot = ~uint32_t(0);

  static size_t hash(std::string_view S) {
    // FNV-1a, the project-wide hash (matches cache/Digest.h's choice).
    uint64_t H = 1469598103934665603ull;
    for (char C : S) {
      H ^= uint8_t(C);
      H *= 1099511628211ull;
    }
    return size_t(H);
  }

  void rehash(size_t NewCap) {
    ArenaVector<uint32_t> NewSlots;
    NewSlots.resize(A, NewCap, EmptySlot);
    size_t Mask = NewCap - 1;
    for (uint32_t Sym = 0; Sym < Spellings.size(); ++Sym) {
      size_t I = hash(Spellings[Sym]) & Mask;
      while (NewSlots[I] != EmptySlot)
        I = (I + 1) & Mask;
      NewSlots[I] = Sym;
    }
    Slots = NewSlots;
  }

  Arena &A;
  ArenaVector<uint32_t> Slots;               ///< Open-addressed symbol slots.
  ArenaVector<std::string_view> Spellings;   ///< Symbol -> arena spelling.
};

} // namespace support
} // namespace biv

#endif // BEYONDIV_SUPPORT_STRINGINTERNER_H
