//===- support/Stats.h - Pipeline observability registry --------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on, near-zero-overhead stats layer: named counters and
/// monotonic-clock phase timers that every pipeline stage bumps
/// unconditionally, so any run of any surface (bivc, batch driver, benches,
/// fuzzer) doubles as a measurement.
///
/// Design (DESIGN.md §8):
///  - Names are registered once, process-wide, into a dense index space
///    (deduplicated by spelling; registration is mutex-guarded but happens
///    only at static-initialization / first-touch time).
///  - The hot path is a plain `thread_local` array increment -- no locks, no
///    allocation, no branches.  A scoped timer reads the steady clock twice.
///  - Aggregation is *explicit*: a worker captures its thread's `Frame` (a
///    POD array copy), subtracts a baseline to get a per-unit delta, and the
///    driver merges deltas in input order.  Because merge is plain element
///    wise addition it is associative and commutative, so the merged result
///    is independent of worker count and scheduling -- `--batch -j1` and
///    `-j8` produce byte-identical fingerprints.
///  - Wall-clock span *durations* are the one legitimately nondeterministic
///    field, so `StatsSnapshot::fingerprint()` (the determinism-check
///    rendering) covers counters and span counts but not nanoseconds.
///
/// Instrumentation must never perturb analysis results: stats are written to
/// dedicated cells and rendered only behind `--stats` / `--stats-json`;
/// report bytes never include them (the fuzz oracle's batch byte-identity
/// check would catch a violation).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_STATS_H
#define BEYONDIV_SUPPORT_STATS_H

#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace biv {
namespace stats {

/// Fixed cell-space bounds.  Registration asserts when exceeded; bump the
/// constants when adding whole new counter families.
inline constexpr unsigned MaxCounters = 192;
inline constexpr unsigned MaxTimers = 64;
inline constexpr unsigned MaxHistograms = 16;

/// Power-of-two histogram buckets: bucket 0 holds the value 0, bucket i
/// holds values in [2^(i-1), 2^i).  32 buckets cover the full useful range
/// of nanosecond latencies and queue depths.
inline constexpr unsigned HistBuckets = 32;

/// One timer cell: how many spans closed and their summed duration.
struct TimerCell {
  uint64_t Ns = 0;
  uint64_t Spans = 0;
};

/// One histogram cell: observation count, value sum, and log2 buckets.
/// Distribution-valued metrics (request latency, queue depth at admission)
/// need tails, not just totals; the bucket layout keeps the cell POD and
/// the observe path a couple of arithmetic ops.
struct HistCell {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Buckets[HistBuckets] = {};
};

/// The calling thread's raw cells.  POD so capture is a struct copy.
struct Frame {
  uint64_t Counters[MaxCounters] = {};
  TimerCell Timers[MaxTimers] = {};
  HistCell Hists[MaxHistograms] = {};

  /// Element-wise accumulate (associative + commutative, so merge order and
  /// worker count cannot change the result).
  Frame &operator+=(const Frame &O);
  /// Element-wise delta: `after - before` isolates one unit's work.
  Frame operator-(const Frame &O) const;
};

/// The calling thread's live frame.  Cells grow monotonically; consumers
/// take before/after copies and subtract.
Frame &threadFrame();

/// Copy of the calling thread's frame (allocation-free: returns the POD).
Frame captureFrame();

/// Registers (or finds) the counter named \p Name; returns its dense index.
/// \p Name must outlive the process (string literals).
unsigned registerCounter(const char *Name);

/// Registers (or finds) the timer named \p Name; returns its dense index.
unsigned registerTimer(const char *Name);

/// Registers (or finds) the histogram named \p Name; returns its dense
/// index.
unsigned registerHistogram(const char *Name);

/// Bumps the counter named \p Name (registering it, with an owned copy of
/// the name, on first touch).  This is the slow path for names that only
/// exist at run time -- the analysis cache replaying a stored unit's
/// counter deltas -- not a replacement for `static const Counter` sites.
void bumpNamedCounter(const std::string &Name, uint64_t N);

/// A named counter.  Define one `static const` per site and bump it; the
/// constructor resolves the dense index once.
class Counter {
public:
  explicit Counter(const char *Name) : Idx(registerCounter(Name)) {}
  void bump(uint64_t N = 1) const { threadFrame().Counters[Idx] += N; }
  unsigned index() const { return Idx; }

private:
  unsigned Idx;
};

/// A named histogram.  Define one `static const` per site; `observe` files
/// a value into its log2 bucket on the calling thread's frame.
class Histogram {
public:
  explicit Histogram(const char *Name) : Idx(registerHistogram(Name)) {}
  void observe(uint64_t V) const {
    HistCell &C = threadFrame().Hists[Idx];
    ++C.Count;
    C.Sum += V;
    unsigned B = unsigned(std::bit_width(V)); // 0 -> 0, [2^(i-1), 2^i) -> i
    ++C.Buckets[B < HistBuckets ? B : HistBuckets - 1];
  }
  unsigned index() const { return Idx; }

private:
  unsigned Idx;
};

/// A named phase timer; time accrues through ScopedSpan.
class Timer {
public:
  explicit Timer(const char *Name) : Idx(registerTimer(Name)) {}
  unsigned index() const { return Idx; }

private:
  unsigned Idx;
};

/// RAII span: adds the enclosed steady-clock duration (and one span count)
/// to the timer's thread-local cell.  Spans nest freely -- each level
/// accrues its own inclusive time.
class ScopedSpan {
public:
  explicit ScopedSpan(const Timer &T)
      : Idx(T.index()), Start(std::chrono::steady_clock::now()) {}
  ~ScopedSpan() {
    TimerCell &C = threadFrame().Timers[Idx];
    C.Ns += uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - Start)
                         .count());
    ++C.Spans;
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  unsigned Idx;
  std::chrono::steady_clock::time_point Start;
};

/// One timer's merged value in a snapshot.
struct TimerValue {
  uint64_t Spans = 0;
  uint64_t Ns = 0;
};

/// One histogram's merged value in a snapshot.
struct HistValue {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::vector<uint64_t> Buckets; ///< HistBuckets entries, log2 layout.

  /// Smallest value v with at least `Q * Count` observations <= v, read off
  /// the bucket upper bounds (so it is an over-approximation by at most 2x).
  uint64_t quantileUpperBound(double Q) const;
};

/// A named, sorted, mergeable view of one or more frames: what the CLI
/// renders and the JSON schema serializes.  Zero cells are dropped, so the
/// key set reflects what actually ran.
struct StatsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, TimerValue> Timers;
  std::map<std::string, HistValue> Hists;

  /// Accumulates \p O into this snapshot (associative, like Frame::+=).
  void merge(const StatsSnapshot &O);

  /// Human-readable table (for `bivc --stats`, printed to stderr).
  std::string renderTable() const;

  /// Schema-v1 JSON: `{"v": 1, "counters": {...}, "timers": {name:
  /// {"spans": N, "ns": M}, ...}}`, keys sorted, no trailing newline
  /// variance.  A `"hists"` object (name -> {"count", "sum", "buckets"},
  /// trailing zero buckets trimmed) is appended only when at least one
  /// histogram recorded data, so runs without histograms keep the original
  /// two-key schema byte-for-byte.  \p Indent prefixes every line (so batch
  /// mode can embed per-unit snapshots).
  std::string renderJson(const std::string &Indent = "") const;

  /// Canonical deterministic rendering: counters, timer span counts, and
  /// histogram observation counts, sorted by name; durations and latency
  /// buckets excluded (they are the legitimately nondeterministic fields).
  /// Two runs of the same workload must produce byte-identical fingerprints
  /// regardless of thread count.
  std::string fingerprint() const;
};

/// Resolves \p F's cells to their registered names, dropping zero entries.
StatsSnapshot snapshotFrame(const Frame &F);

} // namespace stats
} // namespace biv

#endif // BEYONDIV_SUPPORT_STATS_H
