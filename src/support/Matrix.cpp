//===- support/Matrix.cpp - Rational dense matrices -----------------------===//

#include "support/Matrix.h"

using namespace biv;

RatMatrix RatMatrix::identity(unsigned N) {
  RatMatrix M(N, N);
  for (unsigned I = 0; I < N; ++I)
    M.at(I, I) = Rational(1);
  return M;
}

RatMatrix RatMatrix::operator*(const RatMatrix &RHS) const {
  assert(NumCols == RHS.NumRows && "shape mismatch in matrix multiply");
  RatMatrix Result(NumRows, RHS.NumCols);
  for (unsigned R = 0; R < NumRows; ++R)
    for (unsigned K = 0; K < NumCols; ++K) {
      const Rational &V = at(R, K);
      if (V.isZero())
        continue;
      for (unsigned C = 0; C < RHS.NumCols; ++C)
        Result.at(R, C) += V * RHS.at(K, C);
    }
  return Result;
}

std::optional<RatMatrix> RatMatrix::inverse() const {
  assert(NumRows == NumCols && "inverse of non-square matrix");
  unsigned N = NumRows;
  RatMatrix Work = *this;
  RatMatrix Inv = identity(N);
  for (unsigned Col = 0; Col < N; ++Col) {
    // Find a pivot row with a nonzero entry in this column.
    unsigned Pivot = Col;
    while (Pivot < N && Work.at(Pivot, Col).isZero())
      ++Pivot;
    if (Pivot == N)
      return std::nullopt;
    if (Pivot != Col)
      for (unsigned C = 0; C < N; ++C) {
        std::swap(Work.at(Pivot, C), Work.at(Col, C));
        std::swap(Inv.at(Pivot, C), Inv.at(Col, C));
      }
    Rational Scale = Rational(1) / Work.at(Col, Col);
    for (unsigned C = 0; C < N; ++C) {
      Work.at(Col, C) *= Scale;
      Inv.at(Col, C) *= Scale;
    }
    for (unsigned R = 0; R < N; ++R) {
      if (R == Col || Work.at(R, Col).isZero())
        continue;
      Rational Factor = Work.at(R, Col);
      for (unsigned C = 0; C < N; ++C) {
        Work.at(R, C) -= Factor * Work.at(Col, C);
        Inv.at(R, C) -= Factor * Inv.at(Col, C);
      }
    }
  }
  return Inv;
}

std::optional<std::vector<Affine>>
RatMatrix::solveAffine(const std::vector<Affine> &B) const {
  assert(NumRows == NumCols && "solve requires a square system");
  assert(B.size() == NumRows && "right-hand side size mismatch");
  std::optional<RatMatrix> Inv = inverse();
  if (!Inv)
    return std::nullopt;
  std::vector<Affine> X(NumRows);
  for (unsigned R = 0; R < NumRows; ++R)
    for (unsigned C = 0; C < NumCols; ++C) {
      const Rational &V = Inv->at(R, C);
      if (!V.isZero())
        X[R] += B[C] * V;
    }
  return X;
}

std::string RatMatrix::str() const {
  std::string Out;
  for (unsigned R = 0; R < NumRows; ++R) {
    for (unsigned C = 0; C < NumCols; ++C) {
      if (C)
        Out += ' ';
      Out += at(R, C).str();
    }
    Out += '\n';
  }
  return Out;
}
