//===- support/Matrix.h - Rational dense matrices --------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small dense matrices over the rationals with Gauss-Jordan inversion.
///
/// Section 4.3 of the paper finds the coefficients of polynomial and
/// geometric induction variables "by matrix inversion with rational
/// arithmetic": build the matrix of powers h^k (and bases g^h) for the first
/// iterations, invert it, and multiply by the computed (perhaps symbolic)
/// first values of the variable.  RatMatrix implements exactly that, and
/// solveAffine handles symbolic right-hand sides.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_MATRIX_H
#define BEYONDIV_SUPPORT_MATRIX_H

#include "support/Affine.h"
#include "support/Rational.h"
#include <optional>
#include <string>
#include <vector>

namespace biv {

/// A dense Rows x Cols matrix of rationals.
class RatMatrix {
public:
  RatMatrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols) {}

  /// Builds the N x N identity.
  static RatMatrix identity(unsigned N);

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  Rational &at(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  const Rational &at(unsigned R, unsigned C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  RatMatrix operator*(const RatMatrix &RHS) const;

  /// Inverts a square matrix; returns nullopt when singular.
  std::optional<RatMatrix> inverse() const;

  /// Solves A * X = B for the affine-valued unknown vector X using Gaussian
  /// elimination over the rationals; returns nullopt when A is singular.
  /// This is how the paper recovers (perhaps symbolic) closed-form
  /// coefficients from the first few values of a recurrence.
  std::optional<std::vector<Affine>>
  solveAffine(const std::vector<Affine> &B) const;

  /// Renders one row per line, entries separated by single spaces.
  std::string str() const;

  bool operator==(const RatMatrix &RHS) const {
    return NumRows == RHS.NumRows && NumCols == RHS.NumCols &&
           Data == RHS.Data;
  }

private:
  unsigned NumRows, NumCols;
  std::vector<Rational> Data;
};

} // namespace biv

#endif // BEYONDIV_SUPPORT_MATRIX_H
