//===- support/Arena.h - Chunked bump allocator -----------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator and the arena-backed containers the AST/IR are
/// built from (DESIGN.md §11).
///
/// An Arena hands out pointer-bumped storage from geometrically growing
/// chunks and frees everything at once when destroyed (or on reset()).
/// Nothing is ever deallocated individually and destructors are never run,
/// so every type placed in an arena must be trivially destructible --
/// `create<T>` enforces this statically.  Types whose only "resources" are
/// other arena allocations (ArenaVector members) satisfy the requirement by
/// construction: their memory dies with the arena.
///
/// The unit of ownership is one compilation unit: the parser owns an arena
/// for the AST, ir::Function owns one for blocks/instructions/operand lists,
/// and the batch driver frees a whole unit by dropping the Function.  Raw
/// pointers into an arena (Value*, Symbol string_views) are valid exactly as
/// long as the owning arena; nothing may outlive it (the sanitizer fuzz run
/// exercises this contract, see tools/run_fuzz.sh).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_ARENA_H
#define BEYONDIV_SUPPORT_ARENA_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace biv {
namespace support {

/// Chunked bump allocator.  Allocation is a pointer bump; deallocation is a
/// no-op until the whole arena is reset or destroyed.
class Arena {
public:
  /// First chunk size; chunks double up to MaxChunkBytes.
  static constexpr size_t MinChunkBytes = size_t(1) << 12;
  static constexpr size_t MaxChunkBytes = size_t(1) << 20;

  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena() { releaseChunks(Chunks); }

  /// Bump-allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
    uintptr_t P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    if (P + Size > reinterpret_cast<uintptr_t>(End)) {
      grow(Size, Align);
      P = (reinterpret_cast<uintptr_t>(Cur) + Align - 1) & ~(Align - 1);
    }
    Cur = reinterpret_cast<char *>(P + Size);
    Allocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Placement-new for trivially destructible \p T; the object's destructor
  /// is never run (batch free).
  template <typename T, typename... Args> T *create(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are batch-freed without destruction");
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(As)...);
  }

  /// Uninitialized storage for \p N objects of \p T.
  template <typename T> T *allocateArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays are batch-freed without destruction");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Copies \p Len bytes into the arena and returns the stable copy.
  char *copyBytes(const char *Data, size_t Len) {
    char *P = static_cast<char *>(allocate(Len ? Len : 1, 1));
    std::memcpy(P, Data, Len);
    return P;
  }

  /// Batch free: drops every chunk and rewinds the counters.  All pointers
  /// previously handed out become invalid.
  void reset() {
    releaseChunks(Chunks);
    Chunks = nullptr;
    Cur = End = nullptr;
    NChunks = 0;
    Reserved = 0;
    Allocated = 0;
    NextChunkBytes = MinChunkBytes;
  }

  /// Total bytes handed out to callers (not counting alignment padding).
  size_t bytesAllocated() const { return Allocated; }
  /// Total bytes acquired from the heap for chunks.
  size_t bytesReserved() const { return Reserved; }
  /// Number of chunks acquired from the heap.
  size_t numChunks() const { return NChunks; }

private:
  struct ChunkHeader {
    ChunkHeader *Next;
    size_t Bytes;
  };

  void grow(size_t Need, size_t Align) {
    size_t Payload = Need + Align + sizeof(ChunkHeader);
    size_t Bytes = NextChunkBytes;
    while (Bytes < Payload)
      Bytes *= 2;
    if (NextChunkBytes < MaxChunkBytes)
      NextChunkBytes *= 2;
    char *Raw = static_cast<char *>(::operator new(Bytes));
    auto *H = reinterpret_cast<ChunkHeader *>(Raw);
    H->Next = Chunks;
    H->Bytes = Bytes;
    Chunks = H;
    Cur = Raw + sizeof(ChunkHeader);
    End = Raw + Bytes;
    ++NChunks;
    Reserved += Bytes;
  }

  static void releaseChunks(ChunkHeader *H) {
    while (H) {
      ChunkHeader *Next = H->Next;
      ::operator delete(static_cast<void *>(H));
      H = Next;
    }
  }

  char *Cur = nullptr;
  char *End = nullptr;
  ChunkHeader *Chunks = nullptr;
  size_t NChunks = 0;
  size_t Reserved = 0;
  size_t Allocated = 0;
  size_t NextChunkBytes = MinChunkBytes;
};

/// A growable array whose storage lives in an Arena.  Element type must be
/// trivially copyable (the growth path memcpys) and trivially destructible.
/// Mutating operations that may grow take the arena explicitly; outgrown
/// storage is abandoned in place (geometric growth bounds the waste to the
/// final capacity).
template <typename T> class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVector elements are moved with memcpy");

public:
  using value_type = T;

  ArenaVector() = default;

  T *begin() { return Data; }
  T *end() { return Data + Sz; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Sz; }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  T &operator[](size_t I) {
    assert(I < Sz && "index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Sz && "index out of range");
    return Data[I];
  }
  T &front() { return (*this)[0]; }
  T &back() { return (*this)[Sz - 1]; }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Sz - 1]; }

  void reserve(Arena &A, size_t N) {
    // Grow geometrically even for explicit reserves: callers like the
    // function's per-symbol tables resize by one symbol at a time, and an
    // exact-fit regrow would memcpy the whole table on every step (O(n^2)).
    if (N > Cap)
      regrow(A, std::max(N, size_t(Cap) * 2));
  }

  void push_back(Arena &A, const T &V) {
    if (Sz == Cap)
      regrow(A, Cap ? Cap * 2 : 4);
    Data[Sz++] = V;
  }

  void insert(Arena &A, size_t Pos, const T &V) {
    assert(Pos <= Sz && "insert position out of range");
    if (Sz == Cap)
      regrow(A, Cap ? Cap * 2 : 4);
    std::memmove(Data + Pos + 1, Data + Pos, (Sz - Pos) * sizeof(T));
    Data[Pos] = V;
    ++Sz;
  }

  void erase(size_t Pos) {
    assert(Pos < Sz && "erase position out of range");
    std::memmove(Data + Pos, Data + Pos + 1, (Sz - Pos - 1) * sizeof(T));
    --Sz;
  }

  void pop_back() {
    assert(Sz && "pop_back on empty vector");
    --Sz;
  }

  void clear() { Sz = 0; }

  /// Drops elements past \p N without touching storage (never grows).
  void truncate(size_t N) {
    assert(N <= Sz && "truncate cannot grow");
    Sz = uint32_t(N);
  }

  void resize(Arena &A, size_t N, const T &Fill = T()) {
    reserve(A, N);
    for (size_t I = Sz; I < N; ++I)
      Data[I] = Fill;
    Sz = uint32_t(N);
  }

private:
  void regrow(Arena &A, size_t NewCap) {
    T *NewData = A.allocateArray<T>(NewCap);
    if (Sz)
      std::memcpy(NewData, Data, Sz * sizeof(T));
    Data = NewData;
    Cap = uint32_t(NewCap);
  }

  T *Data = nullptr;
  uint32_t Sz = 0;
  uint32_t Cap = 0;
};

} // namespace support
} // namespace biv

#endif // BEYONDIV_SUPPORT_ARENA_H
