//===- support/Affine.h - Affine symbolic expressions ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions c0 + sum(ci * symi) with rational coefficients over
/// opaque symbols.
///
/// Induction-variable tuples carry initial values and steps "represented
/// symbolically if [they] cannot be determined" (section 2).  An Affine keeps
/// exactly that: a rational constant plus a rational-weighted combination of
/// loop-invariant symbols.  Symbols are opaque pointers (the IV analysis uses
/// IR values); printing takes a name-resolver callback.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_AFFINE_H
#define BEYONDIV_SUPPORT_AFFINE_H

#include "support/Rational.h"
#include <functional>
#include <map>
#include <optional>
#include <string>

namespace biv {

/// Opaque identity of a symbolic term (the IV analysis passes IR values).
using SymbolRef = const void *;

/// Resolves a symbol to a printable name.
using SymbolNamer = std::function<std::string(SymbolRef)>;

/// An affine expression: Constant + sum of Coeff * Symbol terms.
///
/// Terms with zero coefficients are never stored, so two equal expressions
/// compare equal structurally.
class Affine {
public:
  /// Constructs the constant zero.
  Affine() = default;

  /// Constructs the constant \p C.
  Affine(Rational C) : Constant(C) {}
  Affine(int64_t C) : Constant(C) {}

  /// Constructs the single term 1 * \p Sym.
  static Affine symbol(SymbolRef Sym);

  bool isZero() const { return Constant.isZero() && Terms.empty(); }
  bool isConstant() const { return Terms.empty(); }

  /// Returns the constant value if this has no symbolic terms.
  std::optional<Rational> getConstant() const {
    if (!isConstant())
      return std::nullopt;
    return Constant;
  }

  /// Returns the constant part (the symbolic terms are ignored).
  Rational constantPart() const { return Constant; }

  /// Returns the coefficient of \p Sym (zero when absent).
  Rational coefficientOf(SymbolRef Sym) const;

  /// Returns the symbolic terms in deterministic (pointer-keyed map) order.
  const std::map<SymbolRef, Rational> &terms() const { return Terms; }

  Affine operator-() const;
  Affine operator+(const Affine &RHS) const;
  Affine operator-(const Affine &RHS) const;
  Affine operator*(const Rational &Scale) const;

  Affine &operator+=(const Affine &RHS) { return *this = *this + RHS; }
  Affine &operator-=(const Affine &RHS) { return *this = *this - RHS; }
  Affine &operator*=(const Rational &S) { return *this = *this * S; }

  /// Multiplies two affine expressions; fails (nullopt) unless at least one
  /// side is constant, since the product would otherwise be quadratic.
  static std::optional<Affine> mul(const Affine &A, const Affine &B);

  bool operator==(const Affine &RHS) const {
    return Constant == RHS.Constant && Terms == RHS.Terms;
  }
  bool operator!=(const Affine &RHS) const { return !(*this == RHS); }

  /// Renders the expression, e.g. "3/2 + 2*n".  Symbols are named by
  /// \p Namer, or printed as "sym" when none is given.
  std::string str(const SymbolNamer &Namer = SymbolNamer()) const;

private:
  Rational Constant;
  std::map<SymbolRef, Rational> Terms;
};

} // namespace biv

#endif // BEYONDIV_SUPPORT_AFFINE_H
