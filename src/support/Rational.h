//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic on 64-bit numerator/denominator pairs.
///
/// The paper finds closed forms for polynomial and geometric induction
/// variables by inverting small integer matrices; the inverses "will have
/// only rational entries" (section 4.3), so the solver needs exact rational
/// arithmetic.  Intermediate products are computed in 128 bits, gcd-reduced
/// while still wide, and narrowed back to int64.  A reduced value that does
/// not fit 64 bits throws RationalOverflow -- callers at analysis
/// boundaries (recurrence solver, trip counts, per-region classification)
/// catch it and degrade to "unknown" instead of computing with a silently
/// wrapped number.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_RATIONAL_H
#define BEYONDIV_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace biv {

/// Thrown when an exact rational result cannot be represented in
/// int64/int64 after gcd reduction.  Deliberately a distinct type so
/// analysis code can catch arithmetic overflow without swallowing logic
/// errors.
class RationalOverflow : public std::overflow_error {
public:
  RationalOverflow() : std::overflow_error("rational overflow (result does "
                                           "not fit 64-bit num/den)") {}
};

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
class Rational {
public:
  /// Constructs zero.
  Rational() = default;

  /// Constructs the integer \p N.
  Rational(int64_t N) : Num(N) {}

  /// Constructs \p N / \p D; \p D must be nonzero.
  Rational(int64_t N, int64_t D);

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isOne() const { return Num == 1 && Den == 1; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// Returns the integer value; the rational must be an integer.
  int64_t getInteger() const {
    assert(isInteger() && "not an integer rational");
    return Num;
  }

  /// Returns the least integer >= this.
  int64_t ceil() const;
  /// Returns the greatest integer <= this.
  int64_t floor() const;

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Divides; \p RHS must be nonzero.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const { return !(RHS < *this); }
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return !(*this < RHS); }

  /// Raises this to the integer power \p Exp (Exp >= 0, or this nonzero).
  Rational pow(int64_t Exp) const;

  /// Renders "n" for integers and "n/d" otherwise.
  std::string str() const;

private:
  int64_t Num = 0;
  int64_t Den = 1;
};

/// Greatest common divisor of |A| and |B|; gcd(0, 0) == 0.
int64_t gcd64(int64_t A, int64_t B);

} // namespace biv

#endif // BEYONDIV_SUPPORT_RATIONAL_H
