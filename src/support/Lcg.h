//===- support/Lcg.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic linear congruential generator shared by the
/// benchmark workload generators and the fuzzing subsystem.  Seeded runs are
/// reproducible across platforms and standard libraries (no std::mt19937);
/// a (seed, index) pair therefore identifies a generated program forever,
/// which is what lets minimized fuzz findings be replayed and checked into
/// the regression corpus.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SUPPORT_LCG_H
#define BEYONDIV_SUPPORT_LCG_H

#include <cstdint>

namespace biv {

/// Knuth's MMIX LCG with the low (weak) bits discarded.
class Lcg {
public:
  explicit Lcg(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 17;
  }

  /// Uniform value in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    // Span in uint64 space so Hi - Lo + 1 cannot overflow; a full-range
    // request wraps to 0, meaning "any 64-bit value".
    uint64_t Span = uint64_t(Hi) - uint64_t(Lo) + 1;
    uint64_t R = next();
    if (Span != 0)
      R %= Span;
    return int64_t(uint64_t(Lo) + R);
  }

  /// True with probability Percent/100.
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint64_t State;
};

} // namespace biv

#endif // BEYONDIV_SUPPORT_LCG_H
