//===- support/Stats.cpp - Pipeline observability registry ---------------------===//

#include "support/Stats.h"
#include <cassert>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

using namespace biv;
using namespace biv::stats;

//===----------------------------------------------------------------------===//
// Name registry
//===----------------------------------------------------------------------===//

namespace {

/// Process-wide name tables.  Guarded by a mutex, but touched only when a
/// `static const Counter/Timer` is constructed -- never on the bump path.
struct NameRegistry {
  std::mutex M;
  std::vector<const char *> CounterNames;
  std::vector<const char *> TimerNames;
  std::vector<const char *> HistNames;
  /// Backing store for names that arrive as run-time strings (cache replay
  /// deserializes counter names from a file); a deque never reallocates, so
  /// the pointers handed to the name tables stay stable for the process
  /// lifetime.
  std::deque<std::string> OwnedNames;

  unsigned intern(std::vector<const char *> &Names, const char *Name,
                  unsigned Max) {
    std::lock_guard<std::mutex> Lock(M);
    for (unsigned I = 0; I < Names.size(); ++I)
      if (std::strcmp(Names[I], Name) == 0)
        return I;
    assert(Names.size() < Max && "stats cell space exhausted; raise the "
                                 "MaxCounters/MaxTimers constants");
    (void)Max;
    Names.push_back(Name);
    return unsigned(Names.size() - 1);
  }

  unsigned internCopy(std::vector<const char *> &Names,
                      const std::string &Name, unsigned Max) {
    std::lock_guard<std::mutex> Lock(M);
    for (unsigned I = 0; I < Names.size(); ++I)
      if (Name == Names[I])
        return I;
    assert(Names.size() < Max && "stats cell space exhausted; raise the "
                                 "MaxCounters/MaxTimers constants");
    (void)Max;
    OwnedNames.push_back(Name);
    Names.push_back(OwnedNames.back().c_str());
    return unsigned(Names.size() - 1);
  }

  /// Snapshot of the registered names (copied under the lock so readers
  /// never race a registration).
  std::vector<const char *> counterNames() {
    std::lock_guard<std::mutex> Lock(M);
    return CounterNames;
  }
  std::vector<const char *> timerNames() {
    std::lock_guard<std::mutex> Lock(M);
    return TimerNames;
  }
  std::vector<const char *> histNames() {
    std::lock_guard<std::mutex> Lock(M);
    return HistNames;
  }
};

NameRegistry &registry() {
  static NameRegistry R;
  return R;
}

} // namespace

unsigned biv::stats::registerCounter(const char *Name) {
  return registry().intern(registry().CounterNames, Name, MaxCounters);
}

unsigned biv::stats::registerTimer(const char *Name) {
  return registry().intern(registry().TimerNames, Name, MaxTimers);
}

unsigned biv::stats::registerHistogram(const char *Name) {
  return registry().intern(registry().HistNames, Name, MaxHistograms);
}

void biv::stats::bumpNamedCounter(const std::string &Name, uint64_t N) {
  unsigned Idx = registry().internCopy(registry().CounterNames, Name,
                                       MaxCounters);
  threadFrame().Counters[Idx] += N;
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

Frame &biv::stats::threadFrame() {
  thread_local Frame F;
  return F;
}

Frame biv::stats::captureFrame() { return threadFrame(); }

Frame &Frame::operator+=(const Frame &O) {
  for (unsigned I = 0; I < MaxCounters; ++I)
    Counters[I] += O.Counters[I];
  for (unsigned I = 0; I < MaxTimers; ++I) {
    Timers[I].Ns += O.Timers[I].Ns;
    Timers[I].Spans += O.Timers[I].Spans;
  }
  for (unsigned I = 0; I < MaxHistograms; ++I) {
    Hists[I].Count += O.Hists[I].Count;
    Hists[I].Sum += O.Hists[I].Sum;
    for (unsigned B = 0; B < HistBuckets; ++B)
      Hists[I].Buckets[B] += O.Hists[I].Buckets[B];
  }
  return *this;
}

Frame Frame::operator-(const Frame &O) const {
  Frame D;
  for (unsigned I = 0; I < MaxCounters; ++I)
    D.Counters[I] = Counters[I] - O.Counters[I];
  for (unsigned I = 0; I < MaxTimers; ++I) {
    D.Timers[I].Ns = Timers[I].Ns - O.Timers[I].Ns;
    D.Timers[I].Spans = Timers[I].Spans - O.Timers[I].Spans;
  }
  for (unsigned I = 0; I < MaxHistograms; ++I) {
    D.Hists[I].Count = Hists[I].Count - O.Hists[I].Count;
    D.Hists[I].Sum = Hists[I].Sum - O.Hists[I].Sum;
    for (unsigned B = 0; B < HistBuckets; ++B)
      D.Hists[I].Buckets[B] = Hists[I].Buckets[B] - O.Hists[I].Buckets[B];
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

StatsSnapshot biv::stats::snapshotFrame(const Frame &F) {
  StatsSnapshot S;
  std::vector<const char *> CN = registry().counterNames();
  for (unsigned I = 0; I < CN.size(); ++I)
    if (F.Counters[I] != 0)
      S.Counters[CN[I]] = F.Counters[I];
  std::vector<const char *> TN = registry().timerNames();
  for (unsigned I = 0; I < TN.size(); ++I)
    if (F.Timers[I].Spans != 0 || F.Timers[I].Ns != 0)
      S.Timers[TN[I]] = {F.Timers[I].Spans, F.Timers[I].Ns};
  std::vector<const char *> HN = registry().histNames();
  for (unsigned I = 0; I < HN.size(); ++I)
    if (F.Hists[I].Count != 0) {
      HistValue &H = S.Hists[HN[I]];
      H.Count = F.Hists[I].Count;
      H.Sum = F.Hists[I].Sum;
      H.Buckets.assign(F.Hists[I].Buckets, F.Hists[I].Buckets + HistBuckets);
    }
  return S;
}

uint64_t HistValue::quantileUpperBound(double Q) const {
  if (Count == 0)
    return 0;
  uint64_t Target = uint64_t(Q * double(Count));
  if (Target < 1)
    Target = 1;
  uint64_t Seen = 0;
  for (size_t B = 0; B < Buckets.size(); ++B) {
    Seen += Buckets[B];
    if (Seen >= Target)
      return B == 0 ? 0 : (uint64_t(1) << B) - 1;
  }
  return ~uint64_t(0);
}

void StatsSnapshot::merge(const StatsSnapshot &O) {
  for (const auto &[Name, V] : O.Counters)
    Counters[Name] += V;
  for (const auto &[Name, V] : O.Timers) {
    TimerValue &T = Timers[Name];
    T.Spans += V.Spans;
    T.Ns += V.Ns;
  }
  for (const auto &[Name, V] : O.Hists) {
    HistValue &H = Hists[Name];
    H.Count += V.Count;
    H.Sum += V.Sum;
    if (H.Buckets.size() < V.Buckets.size())
      H.Buckets.resize(V.Buckets.size());
    for (size_t B = 0; B < V.Buckets.size(); ++B)
      H.Buckets[B] += V.Buckets[B];
  }
}

std::string StatsSnapshot::renderTable() const {
  std::string Out;
  char Buf[192];
  Out += "=== stats ===\n";
  if (!Counters.empty())
    Out += "counters:\n";
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "  %-44s %12llu\n", Name.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
  }
  if (!Timers.empty()) {
    std::snprintf(Buf, sizeof(Buf), "timers:%39s %8s %12s\n", "", "spans",
                  "ms");
    Out += Buf;
  }
  for (const auto &[Name, V] : Timers) {
    std::snprintf(Buf, sizeof(Buf), "  %-44s %8llu %12.3f\n", Name.c_str(),
                  static_cast<unsigned long long>(V.Spans),
                  double(V.Ns) / 1e6);
    Out += Buf;
  }
  if (!Hists.empty()) {
    std::snprintf(Buf, sizeof(Buf), "histograms:%31s %12s %10s %10s\n", "",
                  "count", "p50<=", "p99<=");
    Out += Buf;
  }
  for (const auto &[Name, V] : Hists) {
    std::snprintf(Buf, sizeof(Buf), "  %-42s %12llu %10llu %10llu\n",
                  Name.c_str(), static_cast<unsigned long long>(V.Count),
                  static_cast<unsigned long long>(V.quantileUpperBound(0.5)),
                  static_cast<unsigned long long>(V.quantileUpperBound(0.99)));
    Out += Buf;
  }
  return Out;
}

std::string StatsSnapshot::renderJson(const std::string &Indent) const {
  // Names are dotted identifiers (no quotes/backslashes/control bytes), so
  // no escaping is needed; std::map keeps keys sorted for a stable schema.
  std::string Out;
  char Buf[192];
  Out += Indent + "{\n";
  Out += Indent + "  \"v\": 1,\n";
  Out += Indent + "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%s\n%s    \"%s\": %llu",
                  First ? "" : ",", Indent.c_str(), Name.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
    First = false;
  }
  Out += std::string(First ? "" : "\n" + Indent + "  ") + "},\n";
  Out += Indent + "  \"timers\": {";
  First = true;
  for (const auto &[Name, V] : Timers) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n%s    \"%s\": {\"spans\": %llu, \"ns\": %llu}",
                  First ? "" : ",", Indent.c_str(), Name.c_str(),
                  static_cast<unsigned long long>(V.Spans),
                  static_cast<unsigned long long>(V.Ns));
    Out += Buf;
    First = false;
  }
  // Histograms joined after the fact (the serving path); the two-key
  // schema stays byte-identical for every run that never observes one.
  if (Hists.empty()) {
    Out += std::string(First ? "" : "\n" + Indent + "  ") + "}\n";
    Out += Indent + "}";
    return Out;
  }
  Out += std::string(First ? "" : "\n" + Indent + "  ") + "},\n";
  Out += Indent + "  \"hists\": {";
  First = true;
  for (const auto &[Name, V] : Hists) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n%s    \"%s\": {\"count\": %llu, \"sum\": %llu, "
                  "\"buckets\": [",
                  First ? "" : ",", Indent.c_str(), Name.c_str(),
                  static_cast<unsigned long long>(V.Count),
                  static_cast<unsigned long long>(V.Sum));
    Out += Buf;
    size_t Last = V.Buckets.size();
    while (Last > 0 && V.Buckets[Last - 1] == 0)
      --Last; // trailing zero buckets carry no information
    for (size_t B = 0; B < Last; ++B) {
      std::snprintf(Buf, sizeof(Buf), "%s%llu", B ? ", " : "",
                    static_cast<unsigned long long>(V.Buckets[B]));
      Out += Buf;
    }
    Out += "]}";
    First = false;
  }
  Out += std::string(First ? "" : "\n" + Indent + "  ") + "}\n";
  Out += Indent + "}";
  return Out;
}

std::string StatsSnapshot::fingerprint() const {
  std::string Out;
  for (const auto &[Name, V] : Counters)
    Out += "counter " + Name + " " + std::to_string(V) + "\n";
  for (const auto &[Name, V] : Timers)
    Out += "timer " + Name + " spans " + std::to_string(V.Spans) + "\n";
  // Observation counts are workload-determined; sums and bucket shapes are
  // wall-clock artifacts, so only the count participates.
  for (const auto &[Name, V] : Hists)
    Out += "hist " + Name + " count " + std::to_string(V.Count) + "\n";
  return Out;
}
