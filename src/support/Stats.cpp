//===- support/Stats.cpp - Pipeline observability registry ---------------------===//

#include "support/Stats.h"
#include <cassert>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

using namespace biv;
using namespace biv::stats;

//===----------------------------------------------------------------------===//
// Name registry
//===----------------------------------------------------------------------===//

namespace {

/// Process-wide name tables.  Guarded by a mutex, but touched only when a
/// `static const Counter/Timer` is constructed -- never on the bump path.
struct NameRegistry {
  std::mutex M;
  std::vector<const char *> CounterNames;
  std::vector<const char *> TimerNames;
  /// Backing store for names that arrive as run-time strings (cache replay
  /// deserializes counter names from a file); a deque never reallocates, so
  /// the pointers handed to the name tables stay stable for the process
  /// lifetime.
  std::deque<std::string> OwnedNames;

  unsigned intern(std::vector<const char *> &Names, const char *Name,
                  unsigned Max) {
    std::lock_guard<std::mutex> Lock(M);
    for (unsigned I = 0; I < Names.size(); ++I)
      if (std::strcmp(Names[I], Name) == 0)
        return I;
    assert(Names.size() < Max && "stats cell space exhausted; raise the "
                                 "MaxCounters/MaxTimers constants");
    (void)Max;
    Names.push_back(Name);
    return unsigned(Names.size() - 1);
  }

  unsigned internCopy(std::vector<const char *> &Names,
                      const std::string &Name, unsigned Max) {
    std::lock_guard<std::mutex> Lock(M);
    for (unsigned I = 0; I < Names.size(); ++I)
      if (Name == Names[I])
        return I;
    assert(Names.size() < Max && "stats cell space exhausted; raise the "
                                 "MaxCounters/MaxTimers constants");
    (void)Max;
    OwnedNames.push_back(Name);
    Names.push_back(OwnedNames.back().c_str());
    return unsigned(Names.size() - 1);
  }

  /// Snapshot of the registered names (copied under the lock so readers
  /// never race a registration).
  std::vector<const char *> counterNames() {
    std::lock_guard<std::mutex> Lock(M);
    return CounterNames;
  }
  std::vector<const char *> timerNames() {
    std::lock_guard<std::mutex> Lock(M);
    return TimerNames;
  }
};

NameRegistry &registry() {
  static NameRegistry R;
  return R;
}

} // namespace

unsigned biv::stats::registerCounter(const char *Name) {
  return registry().intern(registry().CounterNames, Name, MaxCounters);
}

unsigned biv::stats::registerTimer(const char *Name) {
  return registry().intern(registry().TimerNames, Name, MaxTimers);
}

void biv::stats::bumpNamedCounter(const std::string &Name, uint64_t N) {
  unsigned Idx = registry().internCopy(registry().CounterNames, Name,
                                       MaxCounters);
  threadFrame().Counters[Idx] += N;
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

Frame &biv::stats::threadFrame() {
  thread_local Frame F;
  return F;
}

Frame biv::stats::captureFrame() { return threadFrame(); }

Frame &Frame::operator+=(const Frame &O) {
  for (unsigned I = 0; I < MaxCounters; ++I)
    Counters[I] += O.Counters[I];
  for (unsigned I = 0; I < MaxTimers; ++I) {
    Timers[I].Ns += O.Timers[I].Ns;
    Timers[I].Spans += O.Timers[I].Spans;
  }
  return *this;
}

Frame Frame::operator-(const Frame &O) const {
  Frame D;
  for (unsigned I = 0; I < MaxCounters; ++I)
    D.Counters[I] = Counters[I] - O.Counters[I];
  for (unsigned I = 0; I < MaxTimers; ++I) {
    D.Timers[I].Ns = Timers[I].Ns - O.Timers[I].Ns;
    D.Timers[I].Spans = Timers[I].Spans - O.Timers[I].Spans;
  }
  return D;
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

StatsSnapshot biv::stats::snapshotFrame(const Frame &F) {
  StatsSnapshot S;
  std::vector<const char *> CN = registry().counterNames();
  for (unsigned I = 0; I < CN.size(); ++I)
    if (F.Counters[I] != 0)
      S.Counters[CN[I]] = F.Counters[I];
  std::vector<const char *> TN = registry().timerNames();
  for (unsigned I = 0; I < TN.size(); ++I)
    if (F.Timers[I].Spans != 0 || F.Timers[I].Ns != 0)
      S.Timers[TN[I]] = {F.Timers[I].Spans, F.Timers[I].Ns};
  return S;
}

void StatsSnapshot::merge(const StatsSnapshot &O) {
  for (const auto &[Name, V] : O.Counters)
    Counters[Name] += V;
  for (const auto &[Name, V] : O.Timers) {
    TimerValue &T = Timers[Name];
    T.Spans += V.Spans;
    T.Ns += V.Ns;
  }
}

std::string StatsSnapshot::renderTable() const {
  std::string Out;
  char Buf[192];
  Out += "=== stats ===\n";
  if (!Counters.empty())
    Out += "counters:\n";
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "  %-44s %12llu\n", Name.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
  }
  if (!Timers.empty()) {
    std::snprintf(Buf, sizeof(Buf), "timers:%39s %8s %12s\n", "", "spans",
                  "ms");
    Out += Buf;
  }
  for (const auto &[Name, V] : Timers) {
    std::snprintf(Buf, sizeof(Buf), "  %-44s %8llu %12.3f\n", Name.c_str(),
                  static_cast<unsigned long long>(V.Spans),
                  double(V.Ns) / 1e6);
    Out += Buf;
  }
  return Out;
}

std::string StatsSnapshot::renderJson(const std::string &Indent) const {
  // Names are dotted identifiers (no quotes/backslashes/control bytes), so
  // no escaping is needed; std::map keeps keys sorted for a stable schema.
  std::string Out;
  char Buf[192];
  Out += Indent + "{\n";
  Out += Indent + "  \"v\": 1,\n";
  Out += Indent + "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%s\n%s    \"%s\": %llu",
                  First ? "" : ",", Indent.c_str(), Name.c_str(),
                  static_cast<unsigned long long>(V));
    Out += Buf;
    First = false;
  }
  Out += std::string(First ? "" : "\n" + Indent + "  ") + "},\n";
  Out += Indent + "  \"timers\": {";
  First = true;
  for (const auto &[Name, V] : Timers) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n%s    \"%s\": {\"spans\": %llu, \"ns\": %llu}",
                  First ? "" : ",", Indent.c_str(), Name.c_str(),
                  static_cast<unsigned long long>(V.Spans),
                  static_cast<unsigned long long>(V.Ns));
    Out += Buf;
    First = false;
  }
  Out += std::string(First ? "" : "\n" + Indent + "  ") + "}\n";
  Out += Indent + "}";
  return Out;
}

std::string StatsSnapshot::fingerprint() const {
  std::string Out;
  for (const auto &[Name, V] : Counters)
    Out += "counter " + Name + " " + std::to_string(V) + "\n";
  for (const auto &[Name, V] : Timers)
    Out += "timer " + Name + " spans " + std::to_string(V.Spans) + "\n";
  return Out;
}
