//===- support/Affine.cpp - Affine symbolic expressions -------------------===//

#include "support/Affine.h"
#include <algorithm>

using namespace biv;

Affine Affine::symbol(SymbolRef Sym) {
  Affine A;
  A.Terms[Sym] = Rational(1);
  return A;
}

Rational Affine::coefficientOf(SymbolRef Sym) const {
  auto It = Terms.find(Sym);
  return It == Terms.end() ? Rational() : It->second;
}

Affine Affine::operator-() const {
  Affine Result;
  Result.Constant = -Constant;
  for (const auto &[Sym, Coeff] : Terms)
    Result.Terms[Sym] = -Coeff;
  return Result;
}

Affine Affine::operator+(const Affine &RHS) const {
  Affine Result = *this;
  Result.Constant += RHS.Constant;
  for (const auto &[Sym, Coeff] : RHS.Terms) {
    Rational Sum = Result.coefficientOf(Sym) + Coeff;
    if (Sum.isZero())
      Result.Terms.erase(Sym);
    else
      Result.Terms[Sym] = Sum;
  }
  return Result;
}

Affine Affine::operator-(const Affine &RHS) const {
  // Coefficient-wise binary subtraction; *this + (-RHS) would overflow on
  // any RHS coefficient of INT64_MIN even when the difference fits.
  Affine Result = *this;
  Result.Constant = Result.Constant - RHS.Constant;
  for (const auto &[Sym, Coeff] : RHS.Terms) {
    Rational Diff = Result.coefficientOf(Sym) - Coeff;
    if (Diff.isZero())
      Result.Terms.erase(Sym);
    else
      Result.Terms[Sym] = Diff;
  }
  return Result;
}

Affine Affine::operator*(const Rational &Scale) const {
  Affine Result;
  if (Scale.isZero())
    return Result;
  Result.Constant = Constant * Scale;
  for (const auto &[Sym, Coeff] : Terms)
    Result.Terms[Sym] = Coeff * Scale;
  return Result;
}

std::optional<Affine> Affine::mul(const Affine &A, const Affine &B) {
  if (auto C = A.getConstant())
    return B * *C;
  if (auto C = B.getConstant())
    return A * *C;
  return std::nullopt;
}

std::string Affine::str(const SymbolNamer &Namer) const {
  std::string Out;
  auto nameOf = [&](SymbolRef Sym) {
    return Namer ? Namer(Sym) : std::string("sym");
  };
  // Render terms in (name, coefficient) order: Terms is keyed by symbol
  // pointer, and allocation order must never leak into output (reports are
  // byte-compared across batch worker counts and across runs).
  std::vector<std::pair<std::string, Rational>> Ordered;
  Ordered.reserve(Terms.size());
  for (const auto &[Sym, Coeff] : Terms)
    Ordered.emplace_back(nameOf(Sym), Coeff);
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first < B.first;
              return A.second < B.second;
            });
  if (!Constant.isZero() || Terms.empty())
    Out = Constant.str();
  for (const auto &[Name, Coeff] : Ordered) {
    if (Out.empty()) {
      if (Coeff == Rational(1))
        Out = Name;
      else if (Coeff == Rational(-1))
        Out = "-" + Name;
      else
        Out = Coeff.str() + "*" + Name;
      continue;
    }
    if (Coeff.isNegative()) {
      Rational Abs = -Coeff;
      Out += Abs.isOne() ? " - " + Name : " - " + Abs.str() + "*" + Name;
    } else {
      Out += Coeff.isOne() ? " + " + Name : " + " + Coeff.str() + "*" + Name;
    }
  }
  return Out;
}
