//===- support/Rational.cpp - Exact rational arithmetic -------------------===//

#include "support/Rational.h"

using namespace biv;

int64_t biv::gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

static int64_t narrow(__int128 V) {
  assert(V >= INT64_MIN && V <= INT64_MAX && "rational overflow");
  return static_cast<int64_t>(V);
}

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  int64_t G = gcd64(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Num = N;
  Den = D;
}

static Rational makeNormalized(__int128 N, __int128 D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  // Reduce in 128 bits before narrowing so transient wide values survive.
  __int128 A = N < 0 ? -N : N, B = D;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    N /= A;
    D /= A;
  }
  return Rational(narrow(N), narrow(D));
}

Rational Rational::operator-() const { return Rational(-Num, Den); }

Rational Rational::operator+(const Rational &RHS) const {
  return makeNormalized(static_cast<__int128>(Num) * RHS.Den +
                            static_cast<__int128>(RHS.Num) * Den,
                        static_cast<__int128>(Den) * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return *this + (-RHS);
}

Rational Rational::operator*(const Rational &RHS) const {
  return makeNormalized(static_cast<__int128>(Num) * RHS.Num,
                        static_cast<__int128>(Den) * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  return makeNormalized(static_cast<__int128>(Num) * RHS.Den,
                        static_cast<__int128>(Den) * RHS.Num);
}

bool Rational::operator<(const Rational &RHS) const {
  return static_cast<__int128>(Num) * RHS.Den <
         static_cast<__int128>(RHS.Num) * Den;
}

int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  return -((-Num + Den - 1) / Den);
}

int64_t Rational::ceil() const { return -(-*this).floor(); }

Rational Rational::pow(int64_t Exp) const {
  if (Exp < 0)
    return Rational(1) / pow(-Exp);
  Rational Result(1), Base = *this;
  while (Exp > 0) {
    if (Exp & 1)
      Result *= Base;
    Base *= Base;
    Exp >>= 1;
  }
  return Result;
}

std::string Rational::str() const {
  if (isInteger())
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
