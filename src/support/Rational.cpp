//===- support/Rational.cpp - Exact rational arithmetic -------------------===//

#include "support/Rational.h"

using namespace biv;

int64_t biv::gcd64(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

static int64_t narrow(__int128 V) {
  // Gcd reduction already ran in 128 bits; a value still out of range here
  // is a genuine overflow of the representation, never a transient.  Report
  // it instead of wrapping (the old assert compiled away under NDEBUG and
  // the static_cast silently truncated).
  if (V < INT64_MIN || V > INT64_MAX)
    throw RationalOverflow();
  return static_cast<int64_t>(V);
}

Rational::Rational(int64_t N, int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  // Normalize sign and reduce in 128 bits: N = INT64_MIN with D < 0 would
  // overflow a plain int64 negation before the gcd could shrink it.
  __int128 WN = N, WD = D;
  if (WD < 0) {
    WN = -WN;
    WD = -WD;
  }
  __int128 A = WN < 0 ? -WN : WN, B = WD;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    WN /= A;
    WD /= A;
  }
  Num = narrow(WN);
  Den = narrow(WD);
}

static Rational makeNormalized(__int128 N, __int128 D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  // Reduce in 128 bits before narrowing so transient wide values survive.
  __int128 A = N < 0 ? -N : N, B = D;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  if (A > 1) {
    N /= A;
    D /= A;
  }
  return Rational(narrow(N), narrow(D));
}

Rational Rational::operator-() const {
  // -INT64_MIN/Den is not representable; route through the widening
  // constructor path instead of negating in int64 (signed-overflow UB).
  return makeNormalized(-static_cast<__int128>(Num), Den);
}

Rational Rational::operator+(const Rational &RHS) const {
  return makeNormalized(static_cast<__int128>(Num) * RHS.Den +
                            static_cast<__int128>(RHS.Num) * Den,
                        static_cast<__int128>(Den) * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  // Direct 128-bit subtraction, not *this + (-RHS): negating first throws
  // for RHS touching INT64_MIN even when the difference itself fits (e.g.
  // the trip-count margin (hi - lo) with lo == INT64_MIN).
  return makeNormalized(static_cast<__int128>(Num) * RHS.Den -
                            static_cast<__int128>(RHS.Num) * Den,
                        static_cast<__int128>(Den) * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return makeNormalized(static_cast<__int128>(Num) * RHS.Num,
                        static_cast<__int128>(Den) * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  return makeNormalized(static_cast<__int128>(Num) * RHS.Den,
                        static_cast<__int128>(Den) * RHS.Num);
}

bool Rational::operator<(const Rational &RHS) const {
  return static_cast<__int128>(Num) * RHS.Den <
         static_cast<__int128>(RHS.Num) * Den;
}

int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  // Widen: -Num overflows for Num == INT64_MIN.  The result magnitude only
  // shrinks (Den >= 1), so the final narrow always succeeds.
  __int128 N = -static_cast<__int128>(Num);
  return narrow(-((N + Den - 1) / Den));
}

int64_t Rational::ceil() const {
  // Truncation toward zero is already the ceiling for non-positive values;
  // doing it directly (rather than -(-x).floor()) keeps INT64_MIN/Den legal.
  if (Num <= 0)
    return Num / Den;
  return narrow((static_cast<__int128>(Num) + Den - 1) / Den);
}

Rational Rational::pow(int64_t Exp) const {
  if (Exp < 0)
    return Rational(1) / pow(-Exp);
  Rational Result(1), Base = *this;
  while (Exp > 0) {
    if (Exp & 1)
      Result *= Base;
    Base *= Base;
    Exp >>= 1;
  }
  return Result;
}

std::string Rational::str() const {
  if (isInteger())
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
