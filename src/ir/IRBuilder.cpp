//===- ir/IRBuilder.cpp - Instruction construction helper ------------------===//

#include "ir/IRBuilder.h"

using namespace biv::ir;

Instruction *IRBuilder::emit(std::unique_ptr<Instruction> I) {
  assert(BB && "no insertion block set");
  return BB->append(std::move(I));
}

Instruction *IRBuilder::binary(Opcode Op, Value *L, Value *R,
                               const std::string &N) {
  assert((isBinaryArith(Op) || isCompare(Op)) && "not a binary opcode");
  return emit(std::make_unique<Instruction>(Op, std::vector<Value *>{L, R},
                                            N));
}

Instruction *IRBuilder::neg(Value *V, const std::string &N) {
  return emit(
      std::make_unique<Instruction>(Opcode::Neg, std::vector<Value *>{V}, N));
}

Instruction *IRBuilder::copy(Value *V, const std::string &N) {
  return emit(
      std::make_unique<Instruction>(Opcode::Copy, std::vector<Value *>{V}, N));
}

Instruction *IRBuilder::phi(const std::string &N) {
  // Phis must stay grouped at the block top.
  assert(BB && "no insertion block set");
  auto I =
      std::make_unique<Instruction>(Opcode::Phi, std::vector<Value *>{}, N);
  return BB->insertAt(BB->phis().size(), std::move(I));
}

Instruction *IRBuilder::loadVar(Var *V, const std::string &N) {
  auto I = std::make_unique<Instruction>(Opcode::LoadVar,
                                         std::vector<Value *>{},
                                         N.empty() ? V->name() : N);
  I->setVariable(V);
  return emit(std::move(I));
}

Instruction *IRBuilder::storeVar(Var *V, Value *Val) {
  auto I = std::make_unique<Instruction>(Opcode::StoreVar,
                                         std::vector<Value *>{Val});
  I->setVariable(V);
  return emit(std::move(I));
}

Instruction *IRBuilder::arrayLoad(Array *A, std::vector<Value *> Indices,
                                  const std::string &N) {
  assert(Indices.size() == A->rank() && "subscript count != array rank");
  auto I = std::make_unique<Instruction>(Opcode::ArrayLoad,
                                         std::move(Indices), N);
  I->setArray(A);
  return emit(std::move(I));
}

Instruction *IRBuilder::arrayStore(Array *A, std::vector<Value *> Indices,
                                   Value *Val) {
  assert(Indices.size() == A->rank() && "subscript count != array rank");
  std::vector<Value *> Ops;
  Ops.push_back(Val);
  Ops.insert(Ops.end(), Indices.begin(), Indices.end());
  auto I = std::make_unique<Instruction>(Opcode::ArrayStore, std::move(Ops));
  I->setArray(A);
  return emit(std::move(I));
}

void IRBuilder::br(BasicBlock *Target) {
  auto I =
      std::make_unique<Instruction>(Opcode::Br, std::vector<Value *>{});
  I->addBlock(Target);
  emit(std::move(I));
}

void IRBuilder::condBr(Value *Cond, BasicBlock *Then, BasicBlock *Else) {
  auto I = std::make_unique<Instruction>(Opcode::CondBr,
                                         std::vector<Value *>{Cond});
  I->addBlock(Then);
  I->addBlock(Else);
  emit(std::move(I));
}

void IRBuilder::ret(Value *V) {
  std::vector<Value *> Ops;
  if (V)
    Ops.push_back(V);
  emit(std::make_unique<Instruction>(Opcode::Ret, std::move(Ops)));
}
