//===- ir/IRBuilder.cpp - Instruction construction helper ------------------===//

#include "ir/IRBuilder.h"

using namespace biv::ir;

Instruction *IRBuilder::emit(Instruction *I) {
  assert(BB && "no insertion block set");
  return BB->append(I);
}

Instruction *IRBuilder::binary(Opcode Op, Value *L, Value *R,
                               std::string_view N) {
  assert((isBinaryArith(Op) || isCompare(Op)) && "not a binary opcode");
  return emit(F.newInstr(Op, {L, R}, N));
}

Instruction *IRBuilder::neg(Value *V, std::string_view N) {
  return emit(F.newInstr(Opcode::Neg, {V}, N));
}

Instruction *IRBuilder::copy(Value *V, std::string_view N) {
  return emit(F.newInstr(Opcode::Copy, {V}, N));
}

Instruction *IRBuilder::phi(std::string_view N) {
  // Phis must stay grouped at the block top.
  assert(BB && "no insertion block set");
  return BB->insertAt(BB->phis().size(), F.newInstr(Opcode::Phi, {}, N));
}

Instruction *IRBuilder::loadVar(Var *V, std::string_view N) {
  Instruction *I =
      F.newInstr(Opcode::LoadVar, {}, N.empty() ? V->name() : N);
  I->setVariable(V);
  return emit(I);
}

Instruction *IRBuilder::storeVar(Var *V, Value *Val) {
  Instruction *I = F.newInstr(Opcode::StoreVar, {Val});
  I->setVariable(V);
  return emit(I);
}

Instruction *IRBuilder::arrayLoad(Array *A, std::span<Value *const> Indices,
                                  std::string_view N) {
  assert(Indices.size() == A->rank() && "subscript count != array rank");
  Instruction *I = F.newInstr(Opcode::ArrayLoad, Indices, N);
  I->setArray(A);
  return emit(I);
}

Instruction *IRBuilder::arrayStore(Array *A, std::span<Value *const> Indices,
                                   Value *Val) {
  assert(Indices.size() == A->rank() && "subscript count != array rank");
  Instruction *I = F.newInstr(Opcode::ArrayStore, {Val});
  for (Value *Idx : Indices)
    I->addOperand(Idx);
  I->setArray(A);
  return emit(I);
}

void IRBuilder::br(BasicBlock *Target) {
  Instruction *I = F.newInstr(Opcode::Br);
  I->addBlock(Target);
  emit(I);
}

void IRBuilder::condBr(Value *Cond, BasicBlock *Then, BasicBlock *Else) {
  Instruction *I = F.newInstr(Opcode::CondBr, {Cond});
  I->addBlock(Then);
  I->addBlock(Else);
  emit(I);
}

void IRBuilder::ret(Value *V) {
  Instruction *I = F.newInstr(Opcode::Ret);
  if (V)
    I->addOperand(V);
  emit(I);
}
