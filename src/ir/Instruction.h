//===- ir/Instruction.h - IR instructions -----------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction class: an operation tuple (op, operands...) that is itself
/// a Value, mirroring the paper's tuple representation (op, left, right,
/// ssalink).  Phi incoming blocks and branch successors are kept in a block
/// list parallel to (phi) or separate from (branches) the value operands.
///
/// Instructions and their operand/block lists live in the owning function's
/// arena (create them through Function::newInstr); removing an instruction
/// from a block merely unlinks it -- the storage is reclaimed when the
/// function is destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_INSTRUCTION_H
#define BEYONDIV_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Storage.h"
#include "ir/Value.h"
#include "support/Arena.h"

namespace biv {
namespace ir {

class BasicBlock;

/// A single IR operation.
class Instruction : public Value {
public:
  /// Use Function::newInstr; the arena must be the owning function's.
  Instruction(support::Arena &A, Opcode Op, std::string_view N = {})
      : Value(ValueKind::Instruction, N), A(&A), Op(Op) {}

  Opcode opcode() const { return Op; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// Sentinel for an instruction that has not been numbered yet.
  static constexpr unsigned NoSeq = ~0u;

  /// Dense per-function sequence number assigned by
  /// Function::renumberInstructions(); analyses key flat vectors by it
  /// instead of pointer-keyed maps.  Assigned at creation (unique,
  /// possibly sparse); renumberInstructions() compacts to a dense 0..N-1.
  unsigned seq() const { return Seq; }
  void setSeq(unsigned S) { Seq = S; }

  unsigned numOperands() const { return unsigned(Operands.size()); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  const support::ArenaVector<Value *> &operands() const { return Operands; }
  void addOperand(Value *V) { Operands.push_back(*A, V); }

  /// Blocks associated with this instruction: phi incoming blocks (parallel
  /// to the operands) or branch successors.
  const support::ArenaVector<BasicBlock *> &blocks() const { return Blocks; }
  void addBlock(BasicBlock *BB) { Blocks.push_back(*A, BB); }
  void setBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size() && "block index out of range");
    Blocks[I] = BB;
  }

  /// For a phi, returns the operand flowing in from predecessor \p BB.
  Value *incomingFor(const BasicBlock *BB) const;
  /// For a phi, adds an (operand, predecessor) pair.
  void addIncoming(Value *V, BasicBlock *BB) {
    assert(Op == Opcode::Phi && "addIncoming on non-phi");
    Operands.push_back(*A, V);
    Blocks.push_back(*A, BB);
  }

  /// For a phi, removes the (operand, predecessor) pair at \p I.
  void removeIncoming(unsigned I) {
    assert(Op == Opcode::Phi && "removeIncoming on non-phi");
    assert(I < Operands.size() && "incoming index out of range");
    Operands.erase(I);
    Blocks.erase(I);
  }

  /// Scalar variable of a LoadVar/StoreVar -- and, after SSA construction,
  /// of every phi the builder placed (the variable the phi merges); null
  /// otherwise.
  Var *variable() const { return Variable; }
  void setVariable(Var *V) { Variable = V; }

  /// Array of an ArrayLoad/ArrayStore, null otherwise.
  Array *array() const { return Arr; }
  void setArray(Array *A) { Arr = A; }

  bool isPhi() const { return Op == Opcode::Phi; }
  bool isTerminator() const { return ir::isTerminator(Op); }
  bool isCompare() const { return ir::isCompare(Op); }

  /// True when this instruction writes memory or transfers control, i.e.
  /// must not be removed even if its value is unused.
  bool hasSideEffects() const {
    return Op == Opcode::StoreVar || Op == Opcode::ArrayStore ||
           isTerminator();
  }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Instruction;
  }

private:
  support::Arena *A;
  Opcode Op;
  support::ArenaVector<Value *> Operands;
  support::ArenaVector<BasicBlock *> Blocks;
  BasicBlock *Parent = nullptr;
  Var *Variable = nullptr;
  Array *Arr = nullptr;
  unsigned Seq = NoSeq;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_INSTRUCTION_H
