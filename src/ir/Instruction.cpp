//===- ir/Instruction.cpp - IR instructions --------------------------------===//

#include "ir/Instruction.h"
#include "ir/BasicBlock.h"

using namespace biv::ir;

Value *Instruction::incomingFor(const BasicBlock *BB) const {
  assert(Op == Opcode::Phi && "incomingFor on non-phi");
  assert(Blocks.size() == Operands.size() && "malformed phi");
  for (unsigned I = 0; I < Blocks.size(); ++I)
    if (Blocks[I] == BB)
      return Operands[I];
  assert(false && "no phi incoming for that predecessor");
  return nullptr;
}
