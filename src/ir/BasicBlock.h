//===- ir/BasicBlock.h - CFG basic blocks -----------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: ordered instruction lists linked into a control flow graph.
/// Blocks and their instruction lists live in the owning function's arena;
/// erase/take unlink without freeing (batch free with the function).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_BASICBLOCK_H
#define BEYONDIV_IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include <span>
#include <string_view>

namespace biv {
namespace ir {

class Function;

/// A maximal straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  /// Use Function::createBlock; \p N must be interned in the function.
  BasicBlock(std::string_view N, unsigned Id, Function *F)
      : Name(N), Id(Id), Parent(F) {}

  std::string_view name() const { return Name; }
  /// Stable, dense index within the parent function; analyses use it to key
  /// vectors instead of pointer-keyed maps.
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }
  Function *parent() const { return Parent; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// Appends \p I; asserts that nothing follows an existing terminator.
  Instruction *append(Instruction *I);

  /// Inserts \p I at position \p Pos (0 = front).
  Instruction *insertAt(size_t Pos, Instruction *I);

  /// Inserts \p I immediately before the terminator (or at the end when the
  /// block has none yet).
  Instruction *insertBeforeTerminator(Instruction *I);

  /// Unlinks \p I from the block.  The caller must have already rewritten
  /// all uses; the storage stays in the function's arena.
  void erase(Instruction *I) { take(I); }

  /// Unlinks \p I and returns it (e.g. to re-insert elsewhere).
  Instruction *take(Instruction *I);

  /// Unlinks every instruction for which \p ShouldRemove returns true in one
  /// stable left-to-right compaction.  O(block size) total; bulk sweeps that
  /// call erase() per instruction shift the tail each time and go quadratic
  /// when most of a block dies.
  template <typename Pred> unsigned removeInstrsIf(Pred ShouldRemove) {
    size_t Out = 0;
    for (size_t Idx = 0; Idx < Insts.size(); ++Idx) {
      Instruction *I = Insts[Idx];
      if (ShouldRemove(I)) {
        I->setParent(nullptr);
        continue;
      }
      Insts[Out++] = I;
    }
    unsigned Removed = unsigned(Insts.size() - Out);
    Insts.truncate(Out);
    return Removed;
  }

  /// Returns the terminator, or null for an unfinished block.
  Instruction *terminator() const;

  /// Successor blocks (a view into the terminator's block list; empty for
  /// Ret or an unfinished block).
  std::span<BasicBlock *const> successors() const;

  /// Predecessors; valid after Function::recomputePreds().
  std::span<BasicBlock *const> predecessors() const {
    return {Preds.begin(), Preds.size()};
  }
  void clearPreds() { Preds.clear(); }
  void addPred(BasicBlock *BB);

  /// Phis at the top of the block (a view of the leading phi run).
  std::span<Instruction *const> phis() const;

  // Iteration over instructions (as raw pointers).
  auto begin() const { return Insts.begin(); }
  auto end() const { return Insts.end(); }
  const support::ArenaVector<Instruction *> &instructions() const {
    return Insts;
  }

private:
  support::Arena &arena() const;

  std::string_view Name;
  unsigned Id;
  Function *Parent;
  support::ArenaVector<Instruction *> Insts;
  support::ArenaVector<BasicBlock *> Preds;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_BASICBLOCK_H
