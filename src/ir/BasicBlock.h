//===- ir/BasicBlock.h - CFG basic blocks -----------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: ordered instruction lists linked into a control flow graph.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_BASICBLOCK_H
#define BEYONDIV_IR_BASICBLOCK_H

#include "ir/Instruction.h"
#include <memory>
#include <string>
#include <vector>

namespace biv {
namespace ir {

class Function;

/// A maximal straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  BasicBlock(std::string N, unsigned Id, Function *F)
      : Name(std::move(N)), Id(Id), Parent(F) {}

  const std::string &name() const { return Name; }
  /// Stable, dense index within the parent function; analyses use it to key
  /// vectors instead of pointer-keyed maps.
  unsigned id() const { return Id; }
  void setId(unsigned NewId) { Id = NewId; }
  Function *parent() const { return Parent; }

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  /// Appends \p I; asserts that nothing follows an existing terminator.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I at position \p Pos (0 = front).
  Instruction *insertAt(size_t Pos, std::unique_ptr<Instruction> I);

  /// Inserts \p I immediately before the terminator (or at the end when the
  /// block has none yet).
  Instruction *insertBeforeTerminator(std::unique_ptr<Instruction> I);

  /// Removes \p I from the block and destroys it.  The caller must have
  /// already rewritten all uses.
  void erase(Instruction *I);

  /// Removes \p I and returns ownership without destroying it.
  std::unique_ptr<Instruction> take(Instruction *I);

  /// Returns the terminator, or null for an unfinished block.
  Instruction *terminator() const;

  /// Successor blocks (from the terminator; empty for Ret).
  std::vector<BasicBlock *> successors() const;

  /// Predecessors; valid after Function::recomputePreds().
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  void clearPreds() { Preds.clear(); }
  void addPred(BasicBlock *BB) { Preds.push_back(BB); }

  /// Phis at the top of the block.
  std::vector<Instruction *> phis() const;

  // Iteration over instructions (as raw pointers).
  auto begin() const { return Insts.begin(); }
  auto end() const { return Insts.end(); }
  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

private:
  std::string Name;
  unsigned Id;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_BASICBLOCK_H
