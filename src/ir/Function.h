//===- ir/Function.h - IR functions -----------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its blocks, arguments, scalar variables, arrays, and
/// uniqued integer constants; it is the unit every analysis runs over.
///
/// Memory architecture (DESIGN.md §11): the function owns a bump arena and a
/// string interner, and every IR object it hands out -- blocks,
/// instructions, operand lists, storage, constants, names -- lives there.
/// Destroying the Function batch-frees the whole unit; no per-node
/// deallocation ever happens.  Name-keyed lookups (vars, arrays, arguments,
/// unique-name counters) are symbol-indexed vectors over the interner's
/// dense id space instead of string-keyed maps.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_FUNCTION_H
#define BEYONDIV_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Storage.h"
#include "support/Arena.h"
#include "support/StringInterner.h"
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace biv {
namespace ir {

/// A single function: the CFG plus all storage it references.
class Function {
public:
  explicit Function(std::string_view N) : Name(N) {}
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  /// The unit's arena; everything reachable from this function lives here.
  support::Arena &arena() { return A; }
  const support::Arena &arena() const { return A; }

  /// The unit's interner; IR names are views into it.
  support::StringInterner &interner() { return SI; }
  const support::StringInterner &interner() const { return SI; }

  /// Creates an instruction in the arena.  It is unattached; insert it with
  /// BasicBlock::append/insertAt (IRBuilder does both steps).
  Instruction *newInstr(Opcode Op, std::initializer_list<Value *> Ops = {},
                        std::string_view N = {});
  Instruction *newInstr(Opcode Op, const std::vector<Value *> &Ops,
                        std::string_view N = {});
  Instruction *newInstr(Opcode Op, std::span<Value *const> Ops,
                        std::string_view N = {});

  /// Creates a new empty block; the first block created is the entry.
  BasicBlock *createBlock(std::string_view N);

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front();
  }

  const support::ArenaVector<BasicBlock *> &blocks() const { return Blocks; }
  size_t numBlocks() const { return Blocks.size(); }

  /// Returns the uniqued integer constant \p V.
  Constant *constant(int64_t V);

  /// Returns the function's single undef value.
  UndefValue *undef();

  /// Adds a formal parameter.
  Argument *addArgument(std::string_view N);
  const support::ArenaVector<Argument *> &arguments() const { return Args; }
  /// Finds an argument by name, or null.
  Argument *findArgument(std::string_view N) const;

  /// Creates (or returns the existing) scalar variable named \p N.
  Var *getOrCreateVar(std::string_view N);
  Var *findVar(std::string_view N) const;
  const support::ArenaVector<Var *> &vars() const { return Vars; }

  /// Creates (or returns the existing) array named \p N of rank \p Rank.
  Array *getOrCreateArray(std::string_view N, unsigned Rank = 1);
  Array *findArray(std::string_view N) const;
  const support::ArenaVector<Array *> &arrays() const { return Arrays; }

  /// Recomputes every block's predecessor list from the terminators.  Call
  /// after building or mutating the CFG.
  void recomputePreds();

  /// Deletes blocks unreachable from the entry, prunes phi incomings from
  /// deleted blocks, renumbers block ids densely, and recomputes preds.
  /// Returns the number of blocks removed.
  unsigned removeUnreachableBlocks();

  /// Rewrites every use of \p From to \p To across the whole function
  /// (operand scan; this IR keeps no use lists).
  void replaceAllUsesWith(Value *From, Value *To);

  /// Returns blocks in reverse post order from the entry.  Unreachable
  /// blocks are appended at the end in creation order.
  std::vector<BasicBlock *> reversePostOrder() const;

  /// Total instruction count, for stats and benches.
  size_t instructionCount() const;

  /// Assigns every instruction a dense sequence number (block order, then
  /// position) and returns the count.  Analyses index flat vectors by
  /// Instruction::seq() instead of pointer-keyed maps; re-run after any IR
  /// mutation that adds or reorders instructions.  Idempotent.
  unsigned renumberInstructions();

  /// One past the largest sequence number handed out (0 when the function
  /// has never been numbered).
  unsigned instrSeqBound() const { return InstrSeqBound; }

  /// Reserves a fresh sequence number for an instruction inserted after the
  /// last renumbering (e.g. materialized exit values).
  unsigned allocateInstrSeq() { return InstrSeqBound++; }

  /// Returns a fresh name "Base" or "Base.k" not yet handed out.  The
  /// per-base next-suffix counter lives in the symbol table, so each call is
  /// O(1) -- no re-probing of already-taken spellings.  The returned view is
  /// interned (stable for the function's lifetime).
  std::string_view uniqueName(std::string_view Base);

  /// Interns \p N and returns the stable spelling (for names that must
  /// outlive a caller's temporary).
  std::string_view internName(std::string_view N) {
    return SI.internView(N);
  }

private:
  /// Grows the symbol-indexed side tables to cover \p Sym.
  void ensureSymbolTables(support::Symbol Sym);

  support::Arena A;                 // must precede everything arena-backed
  support::StringInterner SI{A};
  std::string Name;
  support::ArenaVector<BasicBlock *> Blocks;
  support::ArenaVector<Argument *> Args;
  support::ArenaVector<Var *> Vars;
  support::ArenaVector<Array *> Arrays;

  // Symbol-indexed name tables (parallel, lazily grown to interner size).
  support::ArenaVector<Var *> VarBySym;
  support::ArenaVector<Array *> ArrayBySym;
  support::ArenaVector<Argument *> ArgBySym;
  support::ArenaVector<uint32_t> NextSuffix;

  // Open-addressed, arena-backed constant pool (power-of-two probe table).
  support::ArenaVector<Constant *> ConstSlots;
  size_t NumConsts = 0;

  UndefValue *Undef = nullptr;
  unsigned InstrSeqBound = 0;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_FUNCTION_H
