//===- ir/Function.h - IR functions -----------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its blocks, arguments, scalar variables, arrays, and
/// uniqued integer constants; it is the unit every analysis runs over.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_FUNCTION_H
#define BEYONDIV_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Storage.h"
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace biv {
namespace ir {

/// A single function: the CFG plus all storage it references.
class Function {
public:
  explicit Function(std::string N) : Name(std::move(N)) {}

  const std::string &name() const { return Name; }

  /// Creates a new empty block; the first block created is the entry.
  BasicBlock *createBlock(const std::string &N);

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t numBlocks() const { return Blocks.size(); }

  /// Returns the uniqued integer constant \p V.
  Constant *constant(int64_t V);

  /// Returns the function's single undef value.
  UndefValue *undef();

  /// Adds a formal parameter.
  Argument *addArgument(const std::string &N);
  const std::vector<std::unique_ptr<Argument>> &arguments() const {
    return Args;
  }
  /// Finds an argument by name, or null.
  Argument *findArgument(const std::string &N) const;

  /// Creates (or returns the existing) scalar variable named \p N.
  Var *getOrCreateVar(const std::string &N);
  Var *findVar(const std::string &N) const;
  const std::vector<std::unique_ptr<Var>> &vars() const { return Vars; }

  /// Creates (or returns the existing) array named \p N of rank \p Rank.
  Array *getOrCreateArray(const std::string &N, unsigned Rank = 1);
  Array *findArray(const std::string &N) const;
  const std::vector<std::unique_ptr<Array>> &arrays() const { return Arrays; }

  /// Recomputes every block's predecessor list from the terminators.  Call
  /// after building or mutating the CFG.
  void recomputePreds();

  /// Deletes blocks unreachable from the entry, prunes phi incomings from
  /// deleted blocks, renumbers block ids densely, and recomputes preds.
  /// Returns the number of blocks removed.
  unsigned removeUnreachableBlocks();

  /// Rewrites every use of \p From to \p To across the whole function
  /// (operand scan; this IR keeps no use lists).
  void replaceAllUsesWith(Value *From, Value *To);

  /// Returns blocks in reverse post order from the entry.  Unreachable
  /// blocks are appended at the end in creation order.
  std::vector<BasicBlock *> reversePostOrder() const;

  /// Total instruction count, for stats and benches.
  size_t instructionCount() const;

  /// Assigns every instruction a dense sequence number (block order, then
  /// position) and returns the count.  Analyses index flat vectors by
  /// Instruction::seq() instead of pointer-keyed maps; re-run after any IR
  /// mutation that adds or reorders instructions.  Idempotent.
  unsigned renumberInstructions();

  /// One past the largest sequence number handed out (0 when the function
  /// has never been numbered).
  unsigned instrSeqBound() const { return InstrSeqBound; }

  /// Reserves a fresh sequence number for an instruction inserted after the
  /// last renumbering (e.g. materialized exit values).
  unsigned allocateInstrSeq() { return InstrSeqBound++; }

  /// Returns a fresh name "Base" or "Base.k" not yet handed out.
  std::string uniqueName(const std::string &Base);

private:
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<Var>> Vars;
  std::vector<std::unique_ptr<Array>> Arrays;
  std::map<int64_t, std::unique_ptr<Constant>> Constants;
  std::unique_ptr<UndefValue> Undef;
  std::map<std::string, unsigned> NameCounters;
  unsigned InstrSeqBound = 0;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_FUNCTION_H
