//===- ir/Verifier.cpp - Structural IR verification -------------------------===//

#include "ir/Verifier.h"
#include "ir/Printer.h"
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace biv::ir;

std::vector<std::string> biv::ir::verify(const Function &F) {
  std::vector<std::string> Problems;

  if (F.numBlocks() == 0) {
    Problems.push_back("function has no blocks");
    return Problems;
  }

  // This runs on every unit's hot path (twice: raw IR and post-SSA), so the
  // happy path must not allocate per instruction.  Error messages, including
  // the "block X: " prefix, are built only when a problem is found.
  auto problem = [&](const BasicBlock *BB, const char *Msg) {
    Problems.push_back("block " + std::string(BB->name()) + ": " + Msg);
  };

  // Membership test for "defined in this function": instruction sequence
  // numbers are unique within a function (monotonic allocation, dense after
  // renumbering), so a seq-indexed pointer table replaces the pointer set.
  std::vector<const Instruction *> BySeq(F.instrSeqBound(), nullptr);
  for (const BasicBlock *BB : F.blocks())
    for (const Instruction *I : *BB)
      BySeq[I->seq()] = I;
  auto defined = [&](const Value *V) {
    const auto *I = cast<Instruction>(V);
    return I->seq() < BySeq.size() && BySeq[I->seq()] == I;
  };

  // Sort scratch reused across phis (allocates once, not per phi).
  std::vector<const BasicBlock *> IncomingScratch, PredScratch;

  for (const BasicBlock *BB : F.blocks()) {
    if (BB->empty()) {
      problem(BB, "is empty");
      continue;
    }
    // Exactly one terminator, at the end.
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *I = BB->instructions()[Idx];
      bool Last = Idx + 1 == BB->size();
      if (I->isTerminator() != Last)
        problem(BB, Last ? "does not end in a terminator"
                         : "terminator not at end of block");
      if (I->parent() != BB)
        problem(BB, "instruction with wrong parent link");
    }
    // Phis grouped at the top, one incoming per predecessor.
    bool SeenNonPhi = false;
    for (const Instruction *I : *BB) {
      if (!I->isPhi()) {
        SeenNonPhi = true;
        continue;
      }
      if (SeenNonPhi)
        problem(BB, "phi after non-phi instruction");
      if (I->numOperands() != I->blocks().size())
        problem(BB, "phi operand/block count mismatch");
      IncomingScratch.assign(I->blocks().begin(), I->blocks().end());
      PredScratch.assign(BB->predecessors().begin(),
                         BB->predecessors().end());
      std::sort(IncomingScratch.begin(), IncomingScratch.end());
      std::sort(PredScratch.begin(), PredScratch.end());
      if (IncomingScratch != PredScratch)
        problem(BB, "phi incoming blocks do not match predecessors");
    }
    // Operand sanity.
    for (const Instruction *I : *BB)
      for (const Value *Op : I->operands()) {
        if (!Op) {
          problem(BB, "null operand");
          continue;
        }
        if (isa<Instruction>(Op) && !defined(Op))
          problem(BB, "operand not defined in this function");
      }
    // Branch targets must be blocks of this function.
    if (const Instruction *T = BB->terminator())
      for (const BasicBlock *Succ : T->blocks()) {
        bool Found = false;
        for (const BasicBlock *Other : F.blocks())
          Found |= Other == Succ;
        if (!Found)
          problem(BB, "branch to block outside the function");
      }
  }
  return Problems;
}

void biv::ir::verifyOrDie(const Function &F) {
  std::vector<std::string> Problems = verify(F);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "IR verification failed for %s:\n", F.name().c_str());
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::fprintf(stderr, "%s", toString(F).c_str());
  abort();
}
