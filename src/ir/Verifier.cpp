//===- ir/Verifier.cpp - Structural IR verification -------------------------===//

#include "ir/Verifier.h"
#include "ir/Printer.h"
#include <algorithm>
#include <cstdio>
#include <set>

using namespace biv::ir;

std::vector<std::string> biv::ir::verify(const Function &F) {
  std::vector<std::string> Problems;
  auto problem = [&](const std::string &Msg) { Problems.push_back(Msg); };

  if (F.numBlocks() == 0) {
    problem("function has no blocks");
    return Problems;
  }

  // Collect every instruction defined in the function.
  std::set<const Value *> Defined;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      Defined.insert(I.get());

  for (const auto &BB : F.blocks()) {
    const std::string Where = "block " + BB->name() + ": ";
    if (BB->empty()) {
      problem(Where + "is empty");
      continue;
    }
    // Exactly one terminator, at the end.
    for (size_t Idx = 0; Idx < BB->size(); ++Idx) {
      const Instruction *I = BB->instructions()[Idx].get();
      bool Last = Idx + 1 == BB->size();
      if (I->isTerminator() != Last)
        problem(Where + (Last ? "does not end in a terminator"
                              : "terminator not at end of block"));
      if (I->parent() != BB.get())
        problem(Where + "instruction with wrong parent link");
    }
    // Phis grouped at the top, one incoming per predecessor.
    bool SeenNonPhi = false;
    for (const auto &I : *BB) {
      if (!I->isPhi()) {
        SeenNonPhi = true;
        continue;
      }
      if (SeenNonPhi)
        problem(Where + "phi after non-phi instruction");
      if (I->numOperands() != I->blocks().size())
        problem(Where + "phi operand/block count mismatch");
      std::multiset<const BasicBlock *> Incoming(I->blocks().begin(),
                                                 I->blocks().end());
      std::multiset<const BasicBlock *> Preds(BB->predecessors().begin(),
                                              BB->predecessors().end());
      if (Incoming != Preds)
        problem(Where + "phi incoming blocks do not match predecessors");
    }
    // Operand sanity.
    for (const auto &I : *BB)
      for (const Value *Op : I->operands()) {
        if (!Op) {
          problem(Where + "null operand");
          continue;
        }
        if (isa<Instruction>(Op) && !Defined.count(Op))
          problem(Where + "operand not defined in this function");
      }
    // Branch targets must be blocks of this function.
    if (const Instruction *T = BB->terminator())
      for (const BasicBlock *Succ : T->blocks()) {
        bool Found = false;
        for (const auto &Other : F.blocks())
          Found |= Other.get() == Succ;
        if (!Found)
          problem(Where + "branch to block outside the function");
      }
  }
  return Problems;
}

void biv::ir::verifyOrDie(const Function &F) {
  std::vector<std::string> Problems = verify(F);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "IR verification failed for %s:\n", F.name().c_str());
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::fprintf(stderr, "%s", toString(F).c_str());
  abort();
}
