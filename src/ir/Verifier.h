//===- ir/Verifier.h - Structural IR verification ---------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks on a Function's CFG.  SSA-specific
/// dominance checks live in ssa/SSAVerifier.h.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_VERIFIER_H
#define BEYONDIV_IR_VERIFIER_H

#include "ir/Function.h"
#include <string>
#include <vector>

namespace biv {
namespace ir {

/// Checks CFG invariants: every block ends in exactly one terminator, phis
/// are grouped at block tops with one incoming per predecessor, and every
/// operand is a constant, an argument, or an instruction of this function.
/// Returns a list of human-readable problems; empty means well formed.
/// Requires Function::recomputePreds() to have been called.
std::vector<std::string> verify(const Function &F);

/// Asserts that verify(F) is empty, printing the problems on failure.
void verifyOrDie(const Function &F);

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_VERIFIER_H
