//===- ir/Printer.cpp - Textual IR dump ------------------------------------===//

#include "ir/Printer.h"

using namespace biv::ir;

namespace {
std::string str(std::string_view S) { return std::string(S); }
} // namespace

void Printer::numberValues() {
  unsigned Next = 0;
  for (const BasicBlock *BB : F.blocks())
    for (const Instruction *I : *BB) {
      if (!I->name().empty())
        Names[I] = "%" + ::str(I->name());
      else
        Names[I] = "%t" + std::to_string(Next++);
    }
}

std::string Printer::nameOf(const Value *V) const {
  if (const auto *C = dyn_cast<Constant>(V))
    return std::to_string(C->value());
  if (const auto *A = dyn_cast<Argument>(V))
    return ::str(A->name());
  if (isa<UndefValue>(V))
    return "undef";
  auto It = Names.find(V);
  return It != Names.end() ? It->second : "%<unknown>";
}

std::string Printer::str(const Instruction *I) const {
  std::string Out;
  auto operands = [&](unsigned From = 0) {
    std::string S;
    for (unsigned Idx = From; Idx < I->numOperands(); ++Idx) {
      if (Idx != From)
        S += ", ";
      S += nameOf(I->operand(Idx));
    }
    return S;
  };
  switch (I->opcode()) {
  case Opcode::Phi: {
    Out = nameOf(I) + " = phi";
    for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx) {
      Out += Idx == 0 ? " " : ", ";
      Out += "[" + nameOf(I->operand(Idx)) + ", ";
      Out += I->blocks()[Idx]->name();
      Out += "]";
    }
    return Out;
  }
  case Opcode::LoadVar:
    return nameOf(I) + " = loadvar @" + ::str(I->variable()->name());
  case Opcode::StoreVar:
    return "storevar @" + ::str(I->variable()->name()) + ", " + operands();
  case Opcode::ArrayLoad:
    return nameOf(I) + " = aload " + ::str(I->array()->name()) + "[" +
           operands() + "]";
  case Opcode::ArrayStore:
    return "astore " + ::str(I->array()->name()) + "[" + operands(1) +
           "], " + nameOf(I->operand(0));
  case Opcode::Br:
    return "br " + ::str(I->blocks()[0]->name());
  case Opcode::CondBr:
    return "condbr " + nameOf(I->operand(0)) + ", " +
           ::str(I->blocks()[0]->name()) + ", " +
           ::str(I->blocks()[1]->name());
  case Opcode::Ret:
    return I->numOperands() ? "ret " + operands() : "ret";
  default:
    return nameOf(I) + " = " + opcodeName(I->opcode()) + " " + operands();
  }
}

std::string Printer::str() const {
  std::string Out = "func " + F.name() + "(";
  for (const Argument *A : F.arguments()) {
    if (A->index())
      Out += ", ";
    Out += A->name();
  }
  Out += ") {\n";
  for (const BasicBlock *BB : F.blocks()) {
    Out += BB->name();
    Out += ":";
    if (!BB->predecessors().empty()) {
      Out += "  ; preds:";
      for (const BasicBlock *P : BB->predecessors()) {
        Out += " ";
        Out += P->name();
      }
    }
    Out += "\n";
    for (const Instruction *I : *BB)
      Out += "  " + str(I) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string biv::ir::toString(const Function &F) { return Printer(F).str(); }
