//===- ir/Opcode.cpp - IR operation codes ----------------------------------===//

#include "ir/Opcode.h"
#include <cassert>

using namespace biv::ir;

const char *biv::ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Exp:
    return "exp";
  case Opcode::Neg:
    return "neg";
  case Opcode::Phi:
    return "phi";
  case Opcode::Copy:
    return "copy";
  case Opcode::LoadVar:
    return "loadvar";
  case Opcode::StoreVar:
    return "storevar";
  case Opcode::ArrayLoad:
    return "aload";
  case Opcode::ArrayStore:
    return "astore";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  assert(false && "unknown opcode");
  return "<bad>";
}

bool biv::ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool biv::ir::isCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
    return true;
  default:
    return false;
  }
}

bool biv::ir::isBinaryArith(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Exp:
    return true;
  default:
    return false;
  }
}
