//===- ir/AffineOrder.h - Deterministic affine-term iteration ---*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine stores its terms keyed by symbol *pointer*, so iterating them
/// follows allocation order -- which varies across runs (ASLR) and across
/// batch worker threads.  Any consumer whose output depends on term order
/// (instruction emission, rendering) must iterate through orderedTerms(),
/// which sorts by a stable IR key instead.  The batch analyzer's
/// byte-identity guarantee (-j1 == -jN) depends on this.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_AFFINEORDER_H
#define BEYONDIV_IR_AFFINEORDER_H

#include "ir/Instruction.h"
#include "ir/Value.h"
#include "support/Affine.h"
#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

namespace biv {
namespace ir {

/// A total order over IR values that is stable across runs: arguments by
/// index, instructions by their dense sequence number, then kind and name
/// as tiebreaks.  Never compares pointers.
inline std::tuple<int, unsigned, std::string_view>
stableValueKey(const Value *V) {
  if (const auto *A = dyn_cast<Argument>(V))
    return {0, A->index(), V->name()};
  if (const auto *I = dyn_cast<Instruction>(V))
    return {1, I->seq(), V->name()};
  return {2, 0, V->name()};
}

/// The terms of \p V (whose symbols must be IR values, the project-wide
/// convention) in stable order.
inline std::vector<std::pair<const Value *, Rational>>
orderedTerms(const Affine &V) {
  std::vector<std::pair<const Value *, Rational>> Terms;
  Terms.reserve(V.terms().size());
  for (const auto &[Sym, Coeff] : V.terms())
    Terms.emplace_back(static_cast<const Value *>(Sym), Coeff);
  std::sort(Terms.begin(), Terms.end(), [](const auto &A, const auto &B) {
    return stableValueKey(A.first) < stableValueKey(B.first);
  });
  return Terms;
}

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_AFFINEORDER_H
