//===- ir/Function.cpp - IR functions --------------------------------------===//

#include "ir/Function.h"
#include <algorithm>
#include <functional>

using namespace biv::ir;

BasicBlock *Function::createBlock(const std::string &N) {
  unsigned Id = Blocks.size();
  Blocks.push_back(std::make_unique<BasicBlock>(uniqueName(N), Id, this));
  return Blocks.back().get();
}

Constant *Function::constant(int64_t V) {
  auto &Slot = Constants[V];
  if (!Slot)
    Slot = std::make_unique<Constant>(V);
  return Slot.get();
}

UndefValue *Function::undef() {
  if (!Undef)
    Undef = std::make_unique<UndefValue>();
  return Undef.get();
}

Argument *Function::addArgument(const std::string &N) {
  Args.push_back(std::make_unique<Argument>(N, Args.size()));
  return Args.back().get();
}

Argument *Function::findArgument(const std::string &N) const {
  for (const auto &A : Args)
    if (A->name() == N)
      return A.get();
  return nullptr;
}

Var *Function::getOrCreateVar(const std::string &N) {
  if (Var *V = findVar(N))
    return V;
  Vars.push_back(std::make_unique<Var>(N, Vars.size()));
  return Vars.back().get();
}

Var *Function::findVar(const std::string &N) const {
  for (const auto &V : Vars)
    if (V->name() == N)
      return V.get();
  return nullptr;
}

Array *Function::getOrCreateArray(const std::string &N, unsigned Rank) {
  if (Array *A = findArray(N)) {
    assert(A->rank() == Rank && "array redeclared with different rank");
    return A;
  }
  Arrays.push_back(std::make_unique<Array>(N, Arrays.size(), Rank));
  return Arrays.back().get();
}

Array *Function::findArray(const std::string &N) const {
  for (const auto &A : Arrays)
    if (A->name() == N)
      return A.get();
  return nullptr;
}

void Function::recomputePreds() {
  for (const auto &BB : Blocks)
    BB->clearPreds();
  for (const auto &BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      Succ->addPred(BB.get());
}

void Function::replaceAllUsesWith(Value *From, Value *To) {
  assert(From != To && "replacing a value with itself");
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx)
        if (I->operand(Idx) == From)
          I->setOperand(Idx, To);
}

unsigned Function::removeUnreachableBlocks() {
  if (Blocks.empty())
    return 0;
  // Mark blocks reachable from the entry.
  std::vector<char> Reach(Blocks.size(), 0);
  std::vector<BasicBlock *> Work{entry()};
  Reach[entry()->id()] = 1;
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *Succ : BB->successors())
      if (!Reach[Succ->id()]) {
        Reach[Succ->id()] = 1;
        Work.push_back(Succ);
      }
  }
  // Prune phi incomings that flow from doomed blocks.
  for (const auto &BB : Blocks) {
    if (!Reach[BB->id()])
      continue;
    for (Instruction *Phi : BB->phis())
      for (unsigned I = Phi->numOperands(); I-- > 0;)
        if (!Reach[Phi->blocks()[I]->id()])
          Phi->removeIncoming(I);
  }
  // Drop the doomed blocks and renumber the survivors.
  unsigned Removed = 0;
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  for (auto &BB : Blocks) {
    if (Reach[BB->id()]) {
      BB->setId(Kept.size());
      Kept.push_back(std::move(BB));
    } else {
      ++Removed;
    }
  }
  Blocks = std::move(Kept);
  recomputePreds();
  return Removed;
}

std::vector<BasicBlock *> Function::reversePostOrder() const {
  std::vector<BasicBlock *> PostOrder;
  std::vector<char> Visited(Blocks.size(), 0);
  // Iterative DFS with an explicit stack of (block, next-successor) frames.
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  if (!Blocks.empty()) {
    std::vector<Frame> Stack;
    BasicBlock *Entry = Blocks.front().get();
    Visited[Entry->id()] = 1;
    Stack.push_back({Entry, Entry->successors()});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.Next == F.Succs.size()) {
        PostOrder.push_back(F.BB);
        Stack.pop_back();
        continue;
      }
      BasicBlock *Succ = F.Succs[F.Next++];
      if (!Visited[Succ->id()]) {
        Visited[Succ->id()] = 1;
        Stack.push_back({Succ, Succ->successors()});
      }
    }
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  for (const auto &BB : Blocks)
    if (!Visited[BB->id()])
      PostOrder.push_back(BB.get());
  return PostOrder;
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (const auto &BB : Blocks)
    N += BB->size();
  return N;
}

unsigned Function::renumberInstructions() {
  unsigned Next = 0;
  for (const auto &BB : Blocks)
    for (const auto &I : *BB)
      I->setSeq(Next++);
  InstrSeqBound = Next;
  return Next;
}

std::string Function::uniqueName(const std::string &Base) {
  unsigned &Counter = NameCounters[Base];
  std::string Result = Counter == 0 ? Base
                                    : Base + "." + std::to_string(Counter);
  ++Counter;
  return Result;
}
