//===- ir/Function.cpp - IR functions --------------------------------------===//

#include "ir/Function.h"
#include <algorithm>
#include <cstdio>
#include <cstring>

using namespace biv::ir;
using biv::support::Symbol;

Instruction *Function::newInstr(Opcode Op, std::initializer_list<Value *> Ops,
                                std::string_view N) {
  Instruction *I =
      A.create<Instruction>(A, Op, N.empty() ? std::string_view() : SI.internView(N));
  I->setSeq(allocateInstrSeq());
  for (Value *Op_ : Ops)
    I->addOperand(Op_);
  return I;
}

Instruction *Function::newInstr(Opcode Op, const std::vector<Value *> &Ops,
                                std::string_view N) {
  return newInstr(Op, std::span<Value *const>(Ops.data(), Ops.size()), N);
}

Instruction *Function::newInstr(Opcode Op, std::span<Value *const> Ops,
                                std::string_view N) {
  Instruction *I =
      A.create<Instruction>(A, Op, N.empty() ? std::string_view() : SI.internView(N));
  I->setSeq(allocateInstrSeq());
  for (Value *Op_ : Ops)
    I->addOperand(Op_);
  return I;
}

BasicBlock *Function::createBlock(std::string_view N) {
  unsigned Id = unsigned(Blocks.size());
  Blocks.push_back(A, A.create<BasicBlock>(uniqueName(N), Id, this));
  return Blocks.back();
}

Constant *Function::constant(int64_t V) {
  if (ConstSlots.empty())
    ConstSlots.resize(A, 16, nullptr);
  // splitmix64-style scramble so consecutive literals spread out.
  uint64_t H = uint64_t(V) * 0x9e3779b97f4a7c15ull;
  H ^= H >> 32;
  size_t Mask = ConstSlots.size() - 1;
  for (size_t I = size_t(H) & Mask;; I = (I + 1) & Mask) {
    Constant *C = ConstSlots[I];
    if (!C) {
      char Buf[24];
      int Len = std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
      std::string_view Spelling(A.copyBytes(Buf, size_t(Len)), size_t(Len));
      C = A.create<Constant>(V, Spelling);
      ConstSlots[I] = C;
      if (++NumConsts * 4 > ConstSlots.size() * 3) {
        support::ArenaVector<Constant *> Old = ConstSlots;
        ConstSlots = support::ArenaVector<Constant *>();
        ConstSlots.resize(A, Old.size() * 2, nullptr);
        size_t NewMask = ConstSlots.size() - 1;
        for (Constant *E : Old) {
          if (!E)
            continue;
          uint64_t EH = uint64_t(E->value()) * 0x9e3779b97f4a7c15ull;
          EH ^= EH >> 32;
          size_t J = size_t(EH) & NewMask;
          while (ConstSlots[J])
            J = (J + 1) & NewMask;
          ConstSlots[J] = E;
        }
      }
      return C;
    }
    if (C->value() == V)
      return C;
  }
}

UndefValue *Function::undef() {
  if (!Undef)
    Undef = A.create<UndefValue>();
  return Undef;
}

void Function::ensureSymbolTables(Symbol Sym) {
  if (Sym < VarBySym.size())
    return;
  size_t N = size_t(Sym) + 1;
  if (N < SI.size())
    N = SI.size();
  VarBySym.resize(A, N, nullptr);
  ArrayBySym.resize(A, N, nullptr);
  ArgBySym.resize(A, N, nullptr);
  NextSuffix.resize(A, N, 0);
}

Argument *Function::addArgument(std::string_view N) {
  Symbol Sym = SI.intern(N);
  ensureSymbolTables(Sym);
  Argument *Arg = A.create<Argument>(SI.str(Sym), unsigned(Args.size()));
  Args.push_back(A, Arg);
  ArgBySym[Sym] = Arg;
  return Arg;
}

Argument *Function::findArgument(std::string_view N) const {
  Symbol Sym = SI.lookup(N);
  return Sym != support::NoSymbol && Sym < ArgBySym.size() ? ArgBySym[Sym]
                                                           : nullptr;
}

Var *Function::getOrCreateVar(std::string_view N) {
  Symbol Sym = SI.intern(N);
  ensureSymbolTables(Sym);
  if (Var *V = VarBySym[Sym])
    return V;
  Var *V = A.create<Var>(SI.str(Sym), unsigned(Vars.size()));
  Vars.push_back(A, V);
  VarBySym[Sym] = V;
  return V;
}

Var *Function::findVar(std::string_view N) const {
  Symbol Sym = SI.lookup(N);
  return Sym != support::NoSymbol && Sym < VarBySym.size() ? VarBySym[Sym]
                                                           : nullptr;
}

Array *Function::getOrCreateArray(std::string_view N, unsigned Rank) {
  Symbol Sym = SI.intern(N);
  ensureSymbolTables(Sym);
  if (Array *Existing = ArrayBySym[Sym]) {
    assert(Existing->rank() == Rank && "array redeclared with different rank");
    return Existing;
  }
  Array *Arr = A.create<Array>(SI.str(Sym), unsigned(Arrays.size()), Rank);
  Arrays.push_back(A, Arr);
  ArrayBySym[Sym] = Arr;
  return Arr;
}

Array *Function::findArray(std::string_view N) const {
  Symbol Sym = SI.lookup(N);
  return Sym != support::NoSymbol && Sym < ArrayBySym.size() ? ArrayBySym[Sym]
                                                             : nullptr;
}

void Function::recomputePreds() {
  for (BasicBlock *BB : Blocks)
    BB->clearPreds();
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      Succ->addPred(BB);
}

void Function::replaceAllUsesWith(Value *From, Value *To) {
  assert(From != To && "replacing a value with itself");
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx)
        if (I->operand(Idx) == From)
          I->setOperand(Idx, To);
}

unsigned Function::removeUnreachableBlocks() {
  if (Blocks.empty())
    return 0;
  // Mark blocks reachable from the entry.
  std::vector<char> Reach(Blocks.size(), 0);
  std::vector<BasicBlock *> Work{entry()};
  Reach[entry()->id()] = 1;
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *Succ : BB->successors())
      if (!Reach[Succ->id()]) {
        Reach[Succ->id()] = 1;
        Work.push_back(Succ);
      }
  }
  // Prune phi incomings that flow from doomed blocks.
  for (BasicBlock *BB : Blocks) {
    if (!Reach[BB->id()])
      continue;
    for (Instruction *Phi : BB->phis())
      for (unsigned I = Phi->numOperands(); I-- > 0;)
        if (!Reach[Phi->blocks()[I]->id()])
          Phi->removeIncoming(I);
  }
  // Unlink the doomed blocks (their storage stays in the arena) and
  // renumber the survivors.
  unsigned Removed = 0;
  size_t Next = 0;
  for (BasicBlock *BB : Blocks) {
    if (Reach[BB->id()]) {
      BB->setId(unsigned(Next));
      Blocks[Next++] = BB;
    } else {
      ++Removed;
    }
  }
  while (Blocks.size() > Next)
    Blocks.pop_back();
  recomputePreds();
  return Removed;
}

std::vector<BasicBlock *> Function::reversePostOrder() const {
  std::vector<BasicBlock *> PostOrder;
  std::vector<char> Visited(Blocks.size(), 0);
  // Iterative DFS with an explicit stack of (block, next-successor) frames.
  struct Frame {
    BasicBlock *BB;
    std::span<BasicBlock *const> Succs;
    size_t Next = 0;
  };
  if (!Blocks.empty()) {
    std::vector<Frame> Stack;
    BasicBlock *Entry = Blocks.front();
    Visited[Entry->id()] = 1;
    Stack.push_back({Entry, Entry->successors()});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.Next == F.Succs.size()) {
        PostOrder.push_back(F.BB);
        Stack.pop_back();
        continue;
      }
      BasicBlock *Succ = F.Succs[F.Next++];
      if (!Visited[Succ->id()]) {
        Visited[Succ->id()] = 1;
        Stack.push_back({Succ, Succ->successors()});
      }
    }
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  for (BasicBlock *BB : Blocks)
    if (!Visited[BB->id()])
      PostOrder.push_back(BB);
  return PostOrder;
}

size_t Function::instructionCount() const {
  size_t N = 0;
  for (BasicBlock *BB : Blocks)
    N += BB->size();
  return N;
}

unsigned Function::renumberInstructions() {
  unsigned Next = 0;
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      I->setSeq(Next++);
  InstrSeqBound = Next;
  return Next;
}

std::string_view Function::uniqueName(std::string_view Base) {
  Symbol Sym = SI.intern(Base);
  ensureSymbolTables(Sym);
  uint32_t Counter = NextSuffix[Sym]++;
  if (Counter == 0)
    return SI.str(Sym);
  char Buf[16];
  int Len = std::snprintf(Buf, sizeof(Buf), ".%u", Counter);
  std::string_view Spelling = SI.str(Sym);
  char *P = static_cast<char *>(A.allocate(Spelling.size() + size_t(Len), 1));
  std::memcpy(P, Spelling.data(), Spelling.size());
  std::memcpy(P + Spelling.size(), Buf, size_t(Len));
  return std::string_view(P, Spelling.size() + size_t(Len));
}
