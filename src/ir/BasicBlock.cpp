//===- ir/BasicBlock.cpp - CFG basic blocks --------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Function.h"

using namespace biv::ir;

biv::support::Arena &BasicBlock::arena() const { return Parent->arena(); }

Instruction *BasicBlock::append(Instruction *I) {
  assert((Insts.empty() || !Insts.back()->isTerminator()) &&
         "appending past a terminator");
  I->setParent(this);
  Insts.push_back(arena(), I);
  return I;
}

Instruction *BasicBlock::insertAt(size_t Pos, Instruction *I) {
  assert(Pos <= Insts.size() && "insert position out of range");
  I->setParent(this);
  Insts.insert(arena(), Pos, I);
  return I;
}

Instruction *BasicBlock::insertBeforeTerminator(Instruction *I) {
  size_t Pos = Insts.size();
  if (Pos > 0 && Insts.back()->isTerminator())
    --Pos;
  return insertAt(Pos, I);
}

Instruction *BasicBlock::take(Instruction *I) {
  for (size_t Idx = 0; Idx < Insts.size(); ++Idx)
    if (Insts[Idx] == I) {
      Insts.erase(Idx);
      I->setParent(nullptr);
      return I;
    }
  assert(false && "instruction not in this block");
  return nullptr;
}

void BasicBlock::addPred(BasicBlock *BB) { Preds.push_back(arena(), BB); }

Instruction *BasicBlock::terminator() const {
  if (Insts.empty() || !Insts.back()->isTerminator())
    return nullptr;
  return Insts.back();
}

std::span<BasicBlock *const> BasicBlock::successors() const {
  Instruction *T = terminator();
  if (!T || T->opcode() == Opcode::Ret)
    return {};
  return {T->blocks().begin(), T->blocks().size()};
}

std::span<Instruction *const> BasicBlock::phis() const {
  size_t N = 0;
  while (N < Insts.size() && Insts[N]->isPhi())
    ++N;
  return {Insts.begin(), N};
}
