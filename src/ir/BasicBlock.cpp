//===- ir/BasicBlock.cpp - CFG basic blocks --------------------------------===//

#include "ir/BasicBlock.h"
#include <algorithm>

using namespace biv::ir;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert((Insts.empty() || !Insts.back()->isTerminator()) &&
         "appending past a terminator");
  I->setParent(this);
  Insts.push_back(std::move(I));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAt(size_t Pos, std::unique_ptr<Instruction> I) {
  assert(Pos <= Insts.size() && "insert position out of range");
  I->setParent(this);
  Instruction *Raw = I.get();
  Insts.insert(Insts.begin() + Pos, std::move(I));
  return Raw;
}

Instruction *
BasicBlock::insertBeforeTerminator(std::unique_ptr<Instruction> I) {
  size_t Pos = Insts.size();
  if (Pos > 0 && Insts.back()->isTerminator())
    --Pos;
  return insertAt(Pos, std::move(I));
}

void BasicBlock::erase(Instruction *I) { take(I); }

std::unique_ptr<Instruction> BasicBlock::take(Instruction *I) {
  auto It = std::find_if(Insts.begin(), Insts.end(),
                         [&](const auto &P) { return P.get() == I; });
  assert(It != Insts.end() && "instruction not in this block");
  std::unique_ptr<Instruction> Owned = std::move(*It);
  Insts.erase(It);
  Owned->setParent(nullptr);
  return Owned;
}

Instruction *BasicBlock::terminator() const {
  if (Insts.empty() || !Insts.back()->isTerminator())
    return nullptr;
  return Insts.back().get();
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *T = terminator();
  if (!T || T->opcode() == Opcode::Ret)
    return {};
  return T->blocks();
}

std::vector<Instruction *> BasicBlock::phis() const {
  std::vector<Instruction *> Result;
  for (const auto &I : Insts) {
    if (!I->isPhi())
      break;
    Result.push_back(I.get());
  }
  return Result;
}
