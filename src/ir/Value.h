//===- ir/Value.h - IR value hierarchy --------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value hierarchy: constants, function arguments, and instructions.
///
/// Everything that can appear as an operand is a Value.  The hierarchy uses
/// an explicit kind tag plus LLVM-style isa/cast/dyn_cast helpers (no RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_VALUE_H
#define BEYONDIV_IR_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace biv {
namespace ir {

class Function;

/// Discriminator for the Value hierarchy.
enum class ValueKind {
  Constant,
  Argument,
  Undef,
  Instruction,
};

/// Base of everything usable as an instruction operand.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  ValueKind kind() const { return Kind; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

protected:
  Value(ValueKind K, std::string N) : Kind(K), Name(std::move(N)) {}

private:
  ValueKind Kind;
  std::string Name;
};

/// An integer literal (the paper's LT operator).  Uniqued per function.
class Constant : public Value {
public:
  explicit Constant(int64_t V)
      : Value(ValueKind::Constant, std::to_string(V)), Val(V) {}

  int64_t value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Constant;
  }

private:
  int64_t Val;
};

/// A formal parameter of a Function; loop invariant by construction and
/// treated as an opaque symbol by the induction-variable analysis.
class Argument : public Value {
public:
  Argument(std::string N, unsigned Index)
      : Value(ValueKind::Argument, std::move(N)), Index(Index) {}

  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  unsigned Index;
};

/// The value of a variable on a path where it was never assigned.  SSA
/// renaming plugs it into phis fed by such paths.
class UndefValue : public Value {
public:
  UndefValue() : Value(ValueKind::Undef, "undef") {}

  static bool classof(const Value *V) { return V->kind() == ValueKind::Undef; }
};

/// LLVM-style checked casts over the Value hierarchy.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa on null value");
  return To::classof(V);
}

template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast to incompatible value kind");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast to incompatible value kind");
  return static_cast<const To *>(V);
}

template <typename To, typename From> To *dyn_cast(From *V) {
  return V && To::classof(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return V && To::classof(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_VALUE_H
