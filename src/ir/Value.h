//===- ir/Value.h - IR value hierarchy --------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value hierarchy: constants, function arguments, and instructions.
///
/// Everything that can appear as an operand is a Value.  The hierarchy uses
/// an explicit kind tag plus LLVM-style isa/cast/dyn_cast helpers (no RTTI,
/// no vtables): values live in their function's arena and are batch-freed
/// without running destructors (DESIGN.md §11), so the whole hierarchy is
/// trivially destructible.  Names are string_views into the owning
/// function's interner (or, for constants, into its arena) and share its
/// lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_VALUE_H
#define BEYONDIV_IR_VALUE_H

#include <cassert>
#include <cstdint>
#include <string_view>

namespace biv {
namespace ir {

class Function;

/// Discriminator for the Value hierarchy.
enum class ValueKind {
  Constant,
  Argument,
  Undef,
  Instruction,
};

/// Base of everything usable as an instruction operand.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  ValueKind kind() const { return Kind; }

  std::string_view name() const { return Name; }
  /// \p N must outlive this value: pass an interned view
  /// (Function::uniqueName / internName), a literal, or another name.
  void setName(std::string_view N) { Name = N; }

protected:
  Value(ValueKind K, std::string_view N) : Kind(K), Name(N) {}
  ~Value() = default;

private:
  ValueKind Kind;
  std::string_view Name;
};

/// An integer literal (the paper's LT operator).  Uniqued per function; its
/// name is the decimal spelling, stored in the function's arena.
class Constant : public Value {
public:
  Constant(int64_t V, std::string_view Spelling)
      : Value(ValueKind::Constant, Spelling), Val(V) {}

  int64_t value() const { return Val; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Constant;
  }

private:
  int64_t Val;
};

/// A formal parameter of a Function; loop invariant by construction and
/// treated as an opaque symbol by the induction-variable analysis.
class Argument : public Value {
public:
  Argument(std::string_view N, unsigned Index)
      : Value(ValueKind::Argument, N), Index(Index) {}

  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::Argument;
  }

private:
  unsigned Index;
};

/// The value of a variable on a path where it was never assigned.  SSA
/// renaming plugs it into phis fed by such paths.
class UndefValue : public Value {
public:
  UndefValue() : Value(ValueKind::Undef, "undef") {}

  static bool classof(const Value *V) { return V->kind() == ValueKind::Undef; }
};

/// LLVM-style checked casts over the Value hierarchy.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa on null value");
  return To::classof(V);
}

template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast to incompatible value kind");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast to incompatible value kind");
  return static_cast<const To *>(V);
}

template <typename To, typename From> To *dyn_cast(From *V) {
  return V && To::classof(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return V && To::classof(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_VALUE_H
