//===- ir/Printer.h - Textual IR dump ---------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable IR printing, used by tests, examples, and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_PRINTER_H
#define BEYONDIV_IR_PRINTER_H

#include "ir/Function.h"
#include <map>
#include <string>

namespace biv {
namespace ir {

/// Renders an operand: literal constants as numbers, arguments by name,
/// instructions as %name (or a stable %tN when unnamed).
class Printer {
public:
  explicit Printer(const Function &F) : F(F) { numberValues(); }

  /// The short printable name of \p V.
  std::string nameOf(const Value *V) const;

  /// One-line rendering of \p I (no trailing newline).
  std::string str(const Instruction *I) const;

  /// Full-function rendering.
  std::string str() const;

private:
  void numberValues();

  const Function &F;
  std::map<const Value *, std::string> Names;
};

/// Convenience: print the whole function.
std::string toString(const Function &F);

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_PRINTER_H
