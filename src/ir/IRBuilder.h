//===- ir/IRBuilder.h - Instruction construction helper ---------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small convenience layer for appending instructions to a block; used by
/// the front-end lowering and by tests that build the paper's figures
/// directly.  All instructions come from the function's arena.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_IRBUILDER_H
#define BEYONDIV_IR_IRBUILDER_H

#include "ir/Function.h"

namespace biv {
namespace ir {

/// Appends instructions at the end of a chosen insertion block.
class IRBuilder {
public:
  explicit IRBuilder(Function &F, BasicBlock *BB = nullptr) : F(F), BB(BB) {}

  Function &function() const { return F; }
  BasicBlock *insertBlock() const { return BB; }
  void setInsertBlock(BasicBlock *B) { BB = B; }

  /// Appends a binary arithmetic or comparison instruction.
  Instruction *binary(Opcode Op, Value *L, Value *R,
                      std::string_view N = {});

  Instruction *add(Value *L, Value *R, std::string_view N = {}) {
    return binary(Opcode::Add, L, R, N);
  }
  Instruction *sub(Value *L, Value *R, std::string_view N = {}) {
    return binary(Opcode::Sub, L, R, N);
  }
  Instruction *mul(Value *L, Value *R, std::string_view N = {}) {
    return binary(Opcode::Mul, L, R, N);
  }
  Instruction *div(Value *L, Value *R, std::string_view N = {}) {
    return binary(Opcode::Div, L, R, N);
  }
  Instruction *exp(Value *L, Value *R, std::string_view N = {}) {
    return binary(Opcode::Exp, L, R, N);
  }

  Instruction *neg(Value *V, std::string_view N = {});
  Instruction *copy(Value *V, std::string_view N = {});

  /// Appends an empty phi; use Instruction::addIncoming to populate it.
  Instruction *phi(std::string_view N = {});

  Instruction *loadVar(Var *V, std::string_view N = {});
  Instruction *storeVar(Var *V, Value *Val);

  Instruction *arrayLoad(Array *A, std::span<Value *const> Indices,
                         std::string_view N = {});
  Instruction *arrayLoad(Array *A, const std::vector<Value *> &Indices,
                         std::string_view N = {}) {
    return arrayLoad(A, std::span<Value *const>(Indices.data(),
                                                Indices.size()), N);
  }
  Instruction *arrayStore(Array *A, std::span<Value *const> Indices,
                          Value *Val);
  Instruction *arrayStore(Array *A, const std::vector<Value *> &Indices,
                          Value *Val) {
    return arrayStore(A, std::span<Value *const>(Indices.data(),
                                                 Indices.size()), Val);
  }

  void br(BasicBlock *Target);
  void condBr(Value *Cond, BasicBlock *Then, BasicBlock *Else);
  void ret(Value *V = nullptr);

  /// Shorthand for the uniqued constant \p V.
  Constant *constInt(int64_t V) { return F.constant(V); }

private:
  Instruction *emit(Instruction *I);

  Function &F;
  BasicBlock *BB;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_IRBUILDER_H
