//===- ir/Storage.h - Scalar variables and arrays ---------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named storage: scalar variables (promoted to SSA registers by the SSA
/// builder) and arrays (left in memory; their subscripts are what the
/// dependence tests analyze).  Both live in their function's arena; names
/// are views into its interner.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_STORAGE_H
#define BEYONDIV_IR_STORAGE_H

#include <string_view>

namespace biv {
namespace ir {

/// A scalar program variable.  Before SSA construction every read/write goes
/// through LoadVar/StoreVar; afterwards all of those are gone.
class Var {
public:
  Var(std::string_view N, unsigned Id) : Name(N), Id(Id) {}

  std::string_view name() const { return Name; }
  unsigned id() const { return Id; }

private:
  std::string_view Name;
  unsigned Id;
};

/// An array.  Rank is the number of subscripts; arrays are never promoted.
class Array {
public:
  Array(std::string_view N, unsigned Id, unsigned Rank)
      : Name(N), Id(Id), Rank(Rank) {}

  std::string_view name() const { return Name; }
  unsigned id() const { return Id; }
  unsigned rank() const { return Rank; }

private:
  std::string_view Name;
  unsigned Id;
  unsigned Rank;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_STORAGE_H
