//===- ir/Storage.h - Scalar variables and arrays ---------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named storage: scalar variables (promoted to SSA registers by the SSA
/// builder) and arrays (left in memory; their subscripts are what the
/// dependence tests analyze).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_STORAGE_H
#define BEYONDIV_IR_STORAGE_H

#include <string>

namespace biv {
namespace ir {

/// A scalar program variable.  Before SSA construction every read/write goes
/// through LoadVar/StoreVar; afterwards all of those are gone.
class Var {
public:
  Var(std::string N, unsigned Id) : Name(std::move(N)), Id(Id) {}

  const std::string &name() const { return Name; }
  unsigned id() const { return Id; }

private:
  std::string Name;
  unsigned Id;
};

/// An array.  Rank is the number of subscripts; arrays are never promoted.
class Array {
public:
  Array(std::string N, unsigned Id, unsigned Rank)
      : Name(std::move(N)), Id(Id), Rank(Rank) {}

  const std::string &name() const { return Name; }
  unsigned id() const { return Id; }
  unsigned rank() const { return Rank; }

private:
  std::string Name;
  unsigned Id;
  unsigned Rank;
};

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_STORAGE_H
