//===- ir/Opcode.h - IR operation codes -------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation codes for the BeyondIV intermediate representation.
///
/// The paper (Figure 2) assumes tuples with operators AD, SB, MP, DV, EX, NG,
/// PH, LD, ST and LT.  We keep that set (Add..Literal below), split the
/// scalar loads/stores the paper uses for unpromoted variables (LoadVar /
/// StoreVar, removed by SSA construction) from the indexed loads/stores on
/// arrays that dependence analysis cares about, and add the comparisons and
/// terminators any executable CFG needs.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IR_OPCODE_H
#define BEYONDIV_IR_OPCODE_H

namespace biv {
namespace ir {

enum class Opcode {
  // Arithmetic (paper: AD SB MP DV EX NG).
  Add,
  Sub,
  Mul,
  Div,
  Exp,
  Neg,
  // Merge function (paper: PH).
  Phi,
  // Copy of a scalar value (lowering of `x = y`); folded away by SSA
  // renaming but kept as an opcode so tests can build the paper's figures
  // verbatim.
  Copy,
  // Scalar variable access prior to SSA promotion (paper: LD/ST with
  // loop-invariant addresses).
  LoadVar,
  StoreVar,
  // Indexed array access (paper: LD/ST "denoted by the presence of
  // subscripts"); never promoted, analyzed for data dependence.
  ArrayLoad,
  ArrayStore,
  // Integer comparisons producing 0 or 1.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Terminators.
  Br,
  CondBr,
  Ret,
};

/// Returns the textual mnemonic for \p Op (e.g. "add").
const char *opcodeName(Opcode Op);

/// Returns true for Br/CondBr/Ret.
bool isTerminator(Opcode Op);

/// Returns true for the six comparison opcodes.
bool isCompare(Opcode Op);

/// Returns true for the binary arithmetic opcodes (Add..Exp).
bool isBinaryArith(Opcode Op);

} // namespace ir
} // namespace biv

#endif // BEYONDIV_IR_OPCODE_H
