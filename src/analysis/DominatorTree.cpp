//===- analysis/DominatorTree.cpp - Dominance analyses ----------------------===//

#include "analysis/DominatorTree.h"
#include "support/Stats.h"
#include <algorithm>

using namespace biv;
using namespace biv::analysis;

DominatorTree::DominatorTree(const ir::Function &F) : F(F) {
  static const stats::Timer DomTreePhase("phase.domtree");
  stats::ScopedSpan Span(DomTreePhase);
  size_t N = F.numBlocks();
  IDom.assign(N, -1);
  RPONumber.assign(N, -1);
  Children.assign(N, {});

  // Reverse post order over reachable blocks only.
  for (ir::BasicBlock *BB : F.reversePostOrder()) {
    // reversePostOrder appends unreachable blocks; detect them by checking
    // reachability: entry is RPO[0]; anything after an unreachable block is
    // unreachable too.  Simplest: recompute reachability here.
    RPO.push_back(BB);
  }
  // Trim unreachable tail: recompute reachability.
  {
    std::vector<char> Reach(N, 0);
    std::vector<ir::BasicBlock *> Work{F.entry()};
    Reach[F.entry()->id()] = 1;
    while (!Work.empty()) {
      ir::BasicBlock *BB = Work.back();
      Work.pop_back();
      for (ir::BasicBlock *S : BB->successors())
        if (!Reach[S->id()]) {
          Reach[S->id()] = 1;
          Work.push_back(S);
        }
    }
    RPO.erase(std::remove_if(RPO.begin(), RPO.end(),
                             [&](ir::BasicBlock *BB) {
                               return !Reach[BB->id()];
                             }),
              RPO.end());
  }
  for (size_t I = 0; I < RPO.size(); ++I)
    RPONumber[RPO[I]->id()] = static_cast<int>(I);

  // Cooper-Harvey-Kennedy: iterate to a fixed point, intersecting the
  // dominator sets represented by idom pointers in RPO numbering.
  std::vector<int> Doms(RPO.size(), -1); // by RPO number
  Doms[0] = 0;                           // entry dominated by itself
  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (A > B)
        A = Doms[A];
      while (B > A)
        B = Doms[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      ir::BasicBlock *BB = RPO[I];
      int NewIDom = -1;
      for (ir::BasicBlock *P : BB->predecessors()) {
        int PN = RPONumber[P->id()];
        if (PN < 0 || Doms[PN] < 0)
          continue; // unreachable or not yet processed
        NewIDom = NewIDom < 0 ? PN : intersect(PN, NewIDom);
      }
      assert(NewIDom >= 0 && "reachable block with no processed preds");
      if (Doms[I] != NewIDom) {
        Doms[I] = NewIDom;
        Changed = true;
      }
    }
  }
  for (size_t I = 1; I < RPO.size(); ++I) {
    ir::BasicBlock *Parent = RPO[Doms[I]];
    IDom[RPO[I]->id()] = static_cast<int>(Parent->id());
    Children[Parent->id()].push_back(RPO[I]);
  }
}

ir::BasicBlock *DominatorTree::idom(const ir::BasicBlock *BB) const {
  int Id = IDom[BB->id()];
  return Id < 0 ? nullptr : F.blocks()[Id];
}

bool DominatorTree::dominates(const ir::BasicBlock *A,
                              const ir::BasicBlock *B) const {
  if (RPONumber[A->id()] < 0 || RPONumber[B->id()] < 0)
    return false;
  // Walk B's idom chain; RPO numbers strictly decrease along it.
  const ir::BasicBlock *Cur = B;
  while (Cur) {
    if (Cur == A)
      return true;
    if (RPONumber[Cur->id()] < RPONumber[A->id()])
      return false;
    int Id = IDom[Cur->id()];
    Cur = Id < 0 ? nullptr : F.blocks()[Id];
  }
  return false;
}

bool DominatorTree::properlyDominates(const ir::BasicBlock *A,
                                      const ir::BasicBlock *B) const {
  return A != B && dominates(A, B);
}

bool DominatorTree::dominates(const ir::Instruction *Def,
                              const ir::Instruction *I) const {
  const ir::BasicBlock *DefBB = Def->parent();
  const ir::BasicBlock *UseBB = I->parent();
  assert(DefBB && UseBB && "instruction without parent");
  if (DefBB != UseBB)
    return properlyDominates(DefBB, UseBB);
  if (Def == I)
    return false;
  // Same block: compare positions; phis count as defined at the top.
  if (Def->isPhi() && !I->isPhi())
    return true;
  if (!Def->isPhi() && I->isPhi())
    return false;
  for (const ir::Instruction *Inst : *DefBB) {
    if (Inst == Def)
      return true;
    if (Inst == I)
      return false;
  }
  assert(false && "instructions not found in their parent block");
  return false;
}

const std::vector<ir::BasicBlock *> &
DominatorTree::children(const ir::BasicBlock *BB) const {
  return Children[BB->id()];
}

DominanceFrontier::DominanceFrontier(const DominatorTree &DT) {
  const ir::Function &F = DT.function();
  const size_t N = F.numBlocks();
  // Accumulate per-block frontiers as head-linked chains in one pool, then
  // flatten to CSR: a handful of allocations total instead of one vector
  // per block (this sits on the per-unit SSA hot path).
  constexpr uint32_t NoEntry = ~uint32_t(0);
  std::vector<uint32_t> Head(N, NoEntry);
  std::vector<std::pair<ir::BasicBlock *, uint32_t>> Pool; // (member, prev)
  for (ir::BasicBlock *BB : DT.rpo()) {
    if (BB->predecessors().size() < 2)
      continue;
    ir::BasicBlock *IDom = DT.idom(BB);
    for (ir::BasicBlock *P : BB->predecessors())
      for (ir::BasicBlock *Runner = P; Runner && Runner != IDom;
           Runner = DT.idom(Runner)) {
        uint32_t &H = Head[Runner->id()];
        // All entries for one BB are appended consecutively, so a duplicate
        // can only be the chain head.
        if (H != NoEntry && Pool[H].first == BB)
          continue;
        Pool.push_back({BB, H});
        H = uint32_t(Pool.size() - 1);
      }
  }
  Start.assign(N + 1, 0);
  for (size_t B = 0; B < N; ++B)
    for (uint32_t E = Head[B]; E != NoEntry; E = Pool[E].second)
      ++Start[B + 1];
  for (size_t B = 0; B < N; ++B)
    Start[B + 1] += Start[B];
  Flat.resize(Pool.size());
  // Chains are LIFO; fill each segment backwards to restore append order.
  for (size_t B = 0; B < N; ++B) {
    uint32_t At = Start[B + 1];
    for (uint32_t E = Head[B]; E != NoEntry; E = Pool[E].second)
      Flat[--At] = Pool[E].first;
  }
}

PostDominatorTree::PostDominatorTree(const ir::Function &F) : F(F) {
  size_t N = F.numBlocks();
  IPDom.assign(N + 1, -1);
  Level.assign(N + 1, 0);
  HasNode.assign(N + 1, 0);
  const int Virtual = static_cast<int>(N);
  HasNode[Virtual] = 1;

  // Post order on the reverse CFG from the virtual exit.
  std::vector<int> RPONum(N + 1, -1);
  std::vector<ir::BasicBlock *> Order; // reverse-CFG RPO, excluding virtual
  {
    std::vector<char> Visited(N, 0);
    std::vector<ir::BasicBlock *> Post;
    // Iterative DFS over reverse edges, rooted at every exit block.
    struct Frame {
      ir::BasicBlock *BB;
      std::span<ir::BasicBlock *const> Preds;
      size_t Next = 0;
    };
    std::vector<Frame> Stack;
    // Blocks ending in Ret (no successors) are the exits.
    for (ir::BasicBlock *BB : F.blocks()) {
      if (!BB->successors().empty())
        continue;
      if (Visited[BB->id()])
        continue;
      Visited[BB->id()] = 1;
      Stack.push_back({BB, BB->predecessors()});
      while (!Stack.empty()) {
        Frame &Fr = Stack.back();
        if (Fr.Next == Fr.Preds.size()) {
          Post.push_back(Fr.BB);
          Stack.pop_back();
          continue;
        }
        ir::BasicBlock *P = Fr.Preds[Fr.Next++];
        if (!Visited[P->id()]) {
          Visited[P->id()] = 1;
          Stack.push_back({P, P->predecessors()});
        }
      }
    }
    Order.assign(Post.rbegin(), Post.rend());
  }
  RPONum[Virtual] = 0;
  for (size_t I = 0; I < Order.size(); ++I) {
    RPONum[Order[I]->id()] = static_cast<int>(I) + 1;
    HasNode[Order[I]->id()] = 1;
  }

  // CHK on the reverse graph; Doms indexed by reverse-RPO number.
  std::vector<int> Doms(Order.size() + 1, -1);
  Doms[0] = 0;
  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (A > B)
        A = Doms[A];
      while (B > A)
        B = Doms[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Order.size(); ++I) {
      ir::BasicBlock *BB = Order[I];
      int MyNum = static_cast<int>(I) + 1;
      int NewIdom = -1;
      // Reverse-graph predecessors are CFG successors; exits also have the
      // virtual node as a predecessor.
      std::span<ir::BasicBlock *const> Succs = BB->successors();
      if (Succs.empty())
        NewIdom = 0;
      for (ir::BasicBlock *S : Succs) {
        int SN = RPONum[S->id()];
        if (SN < 0 || Doms[SN] < 0)
          continue;
        NewIdom = NewIdom < 0 ? SN : intersect(SN, NewIdom);
      }
      if (NewIdom >= 0 && Doms[MyNum] != NewIdom) {
        Doms[MyNum] = NewIdom;
        Changed = true;
      }
    }
  }

  // Translate back to block ids and compute levels.
  std::vector<int> NumToId(Order.size() + 1, Virtual);
  for (size_t I = 0; I < Order.size(); ++I)
    NumToId[I + 1] = static_cast<int>(Order[I]->id());
  for (size_t I = 0; I < Order.size(); ++I) {
    int D = Doms[I + 1];
    IPDom[Order[I]->id()] = D < 0 ? -1 : NumToId[D];
  }
  // Levels via repeated walking (graphs are small).
  for (size_t I = 0; I < Order.size(); ++I) {
    int Cur = static_cast<int>(Order[I]->id());
    int L = 0;
    while (Cur != Virtual && Cur >= 0) {
      Cur = IPDom[Cur];
      ++L;
    }
    Level[Order[I]->id()] = L;
  }
}

bool PostDominatorTree::postDominates(const ir::BasicBlock *A,
                                      const ir::BasicBlock *B) const {
  if (!HasNode[A->id()] || !HasNode[B->id()])
    return false;
  int Target = static_cast<int>(A->id());
  int Cur = static_cast<int>(B->id());
  const int Virtual = static_cast<int>(F.numBlocks());
  while (Cur >= 0 && Cur != Virtual) {
    if (Cur == Target)
      return true;
    Cur = IPDom[Cur];
  }
  return false;
}
