//===- analysis/LoopInfo.h - Natural loop nest ------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and the loop-nest tree.
///
/// A loop is identified by a header block that dominates one or more latch
/// blocks with back edges to it.  The induction-variable analysis processes
/// this nest "from the inner loops outward" (paper section 5.3), so LoopInfo
/// exposes an inner-to-outer traversal.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_ANALYSIS_LOOPINFO_H
#define BEYONDIV_ANALYSIS_LOOPINFO_H

#include "analysis/DominatorTree.h"
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace biv {
namespace analysis {

/// One natural loop.
class Loop {
public:
  Loop(ir::BasicBlock *Header, std::string Name)
      : Header(Header), Name(std::move(Name)) {}

  ir::BasicBlock *header() const { return Header; }

  /// Printable label, e.g. "L18" recovered from the "L18.header" block name,
  /// matching the loop names in the paper's figures.
  const std::string &name() const { return Name; }

  /// All blocks of the loop (header included).
  const std::vector<ir::BasicBlock *> &blocks() const { return Blocks; }
  bool contains(const ir::BasicBlock *BB) const {
    return BlockSet.count(BB->id()) != 0;
  }
  bool contains(const ir::Instruction *I) const {
    return contains(I->parent());
  }
  /// True when \p Other is this loop or nested (transitively) inside it.
  bool encloses(const Loop *Other) const;

  /// Latch blocks (sources of back edges).  The front end produces exactly
  /// one latch per loop.
  const std::vector<ir::BasicBlock *> &latches() const { return Latches; }

  /// The unique predecessor of the header outside the loop, or null when the
  /// header has several outside predecessors.
  ir::BasicBlock *preheader() const { return Preheader; }

  /// Blocks inside the loop with a successor outside it.
  const std::vector<ir::BasicBlock *> &exitingBlocks() const {
    return Exiting;
  }
  /// Blocks outside the loop that are targets of exiting edges.
  const std::vector<ir::BasicBlock *> &exitBlocks() const { return Exits; }

  Loop *parent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  /// 1 for outermost loops, parent depth + 1 otherwise.
  unsigned depth() const { return Depth; }

  /// Dense position in LoopInfo::loops(); analyses key flat vectors by it
  /// instead of pointer-keyed maps.
  unsigned index() const { return Index; }

private:
  friend class LoopInfo;

  ir::BasicBlock *Header;
  std::string Name;
  std::vector<ir::BasicBlock *> Blocks;
  std::set<unsigned> BlockSet;
  std::vector<ir::BasicBlock *> Latches;
  ir::BasicBlock *Preheader = nullptr;
  std::vector<ir::BasicBlock *> Exiting;
  std::vector<ir::BasicBlock *> Exits;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  unsigned Depth = 1;
  unsigned Index = 0;
};

/// The loop nest of one function.
class LoopInfo {
public:
  LoopInfo(const ir::Function &F, const DominatorTree &DT);

  /// All loops, every parent preceding its children.
  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Outermost loops only.
  const std::vector<Loop *> &topLevel() const { return TopLevel; }

  /// Loops in inner-to-outer order (children before parents), the order the
  /// induction-variable analysis wants.
  std::vector<Loop *> innerToOuter() const;

  /// The innermost loop containing \p BB, or null.
  Loop *loopFor(const ir::BasicBlock *BB) const;

  /// Finds a loop by printable name, or null.
  Loop *byName(const std::string &Name) const;

private:
  const ir::Function &F;
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
  std::vector<Loop *> InnermostFor; // by block id
};

} // namespace analysis
} // namespace biv

#endif // BEYONDIV_ANALYSIS_LOOPINFO_H
