//===- analysis/LoopInfo.cpp - Natural loop nest ----------------------------===//

#include "analysis/LoopInfo.h"
#include "support/Stats.h"
#include <algorithm>
#include <map>

using namespace biv;
using namespace biv::analysis;

bool Loop::encloses(const Loop *Other) const {
  for (const Loop *L = Other; L; L = L->parent())
    if (L == this)
      return true;
  return false;
}

/// Derives the printable loop name from its header block name: "L18.header"
/// becomes "L18"; anything else is used as is.
static std::string loopNameFromHeader(const ir::BasicBlock *Header) {
  std::string_view N = Header->name();
  size_t Dot = N.rfind(".header");
  if (Dot != std::string_view::npos)
    return std::string(N.substr(0, Dot));
  return std::string(N);
}

LoopInfo::LoopInfo(const ir::Function &F, const DominatorTree &DT) : F(F) {
  static const stats::Timer LoopInfoPhase("phase.loopinfo");
  stats::ScopedSpan Span(LoopInfoPhase);
  InnermostFor.assign(F.numBlocks(), nullptr);

  // Find back edges grouped by header, in RPO so outer headers come first.
  std::map<const ir::BasicBlock *, std::vector<ir::BasicBlock *>> BackEdges;
  std::vector<ir::BasicBlock *> HeaderOrder;
  for (ir::BasicBlock *BB : DT.rpo())
    for (ir::BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ, BB)) {
        auto [It, Inserted] = BackEdges.try_emplace(Succ);
        if (Inserted)
          HeaderOrder.push_back(Succ);
        It->second.push_back(BB);
      }
  // RPO order of headers: sort HeaderOrder by RPO position.
  {
    std::map<const ir::BasicBlock *, size_t> Pos;
    for (size_t I = 0; I < DT.rpo().size(); ++I)
      Pos[DT.rpo()[I]] = I;
    std::sort(HeaderOrder.begin(), HeaderOrder.end(),
              [&](ir::BasicBlock *A, ir::BasicBlock *B) {
                return Pos[A] < Pos[B];
              });
  }

  // Build each loop body: backwards reachability from the latches without
  // crossing the header.
  for (ir::BasicBlock *Header : HeaderOrder) {
    auto L = std::make_unique<Loop>(Header, loopNameFromHeader(Header));
    L->Latches = BackEdges[Header];
    L->BlockSet.insert(Header->id());
    std::vector<ir::BasicBlock *> Work = L->Latches;
    for (ir::BasicBlock *Latch : L->Latches)
      L->BlockSet.insert(Latch->id());
    while (!Work.empty()) {
      ir::BasicBlock *BB = Work.back();
      Work.pop_back();
      if (BB == Header)
        continue;
      for (ir::BasicBlock *P : BB->predecessors())
        if (L->BlockSet.insert(P->id()).second)
          Work.push_back(P);
    }
    // Materialize the block list in function order for determinism.
    for (ir::BasicBlock *BB : F.blocks())
      if (L->BlockSet.count(BB->id()))
        L->Blocks.push_back(BB);
    // Preheader: unique outside predecessor of the header.
    ir::BasicBlock *Pre = nullptr;
    bool Multiple = false;
    for (ir::BasicBlock *P : Header->predecessors()) {
      if (L->contains(P))
        continue;
      if (Pre)
        Multiple = true;
      Pre = P;
    }
    L->Preheader = Multiple ? nullptr : Pre;
    // Exits.
    for (ir::BasicBlock *BB : L->Blocks)
      for (ir::BasicBlock *Succ : BB->successors())
        if (!L->contains(Succ)) {
          if (std::find(L->Exiting.begin(), L->Exiting.end(), BB) ==
              L->Exiting.end())
            L->Exiting.push_back(BB);
          if (std::find(L->Exits.begin(), L->Exits.end(), Succ) ==
              L->Exits.end())
            L->Exits.push_back(Succ);
        }
    L->Index = Loops.size();
    Loops.push_back(std::move(L));
  }

  // Parent links: the smallest strictly-containing loop.  Headers appear in
  // RPO, so a parent always precedes its children in Loops.
  for (size_t I = 0; I < Loops.size(); ++I) {
    Loop *Inner = Loops[I].get();
    Loop *Best = nullptr;
    for (size_t J = 0; J < I; ++J) {
      Loop *Outer = Loops[J].get();
      if (Outer == Inner || !Outer->contains(Inner->header()))
        continue;
      if (!Best || Best->Blocks.size() > Outer->Blocks.size())
        Best = Outer;
    }
    Inner->Parent = Best;
    if (Best) {
      Best->SubLoops.push_back(Inner);
      Inner->Depth = Best->Depth + 1;
    } else {
      TopLevel.push_back(Inner);
    }
  }

  // Innermost loop per block: visit loops outer-to-inner so inner loops
  // overwrite their parents.
  for (const auto &L : Loops)
    for (ir::BasicBlock *BB : L->Blocks)
      InnermostFor[BB->id()] = L.get();
}

std::vector<Loop *> LoopInfo::innerToOuter() const {
  // Loops stores parents before children; reversing yields children first.
  std::vector<Loop *> Result;
  for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
    Result.push_back(It->get());
  return Result;
}

Loop *LoopInfo::loopFor(const ir::BasicBlock *BB) const {
  return InnermostFor[BB->id()];
}

Loop *LoopInfo::byName(const std::string &Name) const {
  for (const auto &L : Loops)
    if (L->name() == Name)
      return L.get();
  return nullptr;
}
