//===- analysis/DominatorTree.h - Dominance analyses ------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree, dominance frontiers, and post-dominator tree.
///
/// Implemented with the Cooper-Harvey-Kennedy iterative algorithm ("A
/// Simple, Fast Dominance Algorithm").  Dominance frontiers feed phi
/// placement in the SSA builder (the Cytron et al. construction the paper
/// builds on); post-dominance supports the section 5.4 refinement that a use
/// post-dominated by a strictly monotonic update is itself strict.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_ANALYSIS_DOMINATORTREE_H
#define BEYONDIV_ANALYSIS_DOMINATORTREE_H

#include "ir/Function.h"
#include <span>
#include <vector>

namespace biv {
namespace analysis {

/// Dominator tree over the blocks of one function.  Unreachable blocks have
/// no tree node: idom() is null for them and dominates() is false either way.
class DominatorTree {
public:
  explicit DominatorTree(const ir::Function &F);

  const ir::Function &function() const { return F; }

  /// Immediate dominator; null for the entry and for unreachable blocks.
  ir::BasicBlock *idom(const ir::BasicBlock *BB) const;

  /// Reflexive dominance.
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;
  bool properlyDominates(const ir::BasicBlock *A,
                         const ir::BasicBlock *B) const;

  /// True when instruction \p Def 's value is available at \p I (same block
  /// and earlier, or defining block properly dominates; phis are treated as
  /// defined at the top of their block).
  bool dominates(const ir::Instruction *Def, const ir::Instruction *I) const;

  /// Children in the dominator tree.
  const std::vector<ir::BasicBlock *> &
  children(const ir::BasicBlock *BB) const;

  /// Blocks in reverse post order (reachable only).
  const std::vector<ir::BasicBlock *> &rpo() const { return RPO; }

private:
  const ir::Function &F;
  std::vector<int> IDom;                 // by block id; -1 = none
  std::vector<int> RPONumber;            // by block id; -1 = unreachable
  std::vector<ir::BasicBlock *> RPO;
  std::vector<std::vector<ir::BasicBlock *>> Children;
};

/// Dominance frontiers DF(B) for every reachable block.
class DominanceFrontier {
public:
  explicit DominanceFrontier(const DominatorTree &DT);

  std::span<ir::BasicBlock *const> frontier(const ir::BasicBlock *BB) const {
    return {Flat.data() + Start[BB->id()],
            Start[BB->id() + 1] - Start[BB->id()]};
  }

private:
  /// CSR layout: Flat[Start[id] .. Start[id+1]) is block id's frontier.
  std::vector<uint32_t> Start;
  std::vector<ir::BasicBlock *> Flat;
};

/// Post-dominator tree computed on the reverse CFG with a virtual exit that
/// succeeds every Ret block.  Blocks that cannot reach any exit (infinite
/// loops) have no node; postDominates() is false for them.
class PostDominatorTree {
public:
  explicit PostDominatorTree(const ir::Function &F);

  /// Reflexive post-dominance.
  bool postDominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

private:
  const ir::Function &F;
  std::vector<int> IPDom;        // by block id; -1 = none; NumBlocks = virtual
  std::vector<int> Level;        // depth from virtual root
  std::vector<char> HasNode;
};

} // namespace analysis
} // namespace biv

#endif // BEYONDIV_ANALYSIS_DOMINATORTREE_H
