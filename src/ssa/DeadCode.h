//===- ssa/DeadCode.h - Dead code elimination --------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mark-and-sweep dead code elimination on SSA form.  Deliberately not part
/// of the default pipeline: the paper's example loops compute variables that
/// are never used (all of loop L14, for instance) and the induction-variable
/// analysis must still classify them; run this pass only when a client
/// explicitly wants cleanup.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SSA_DEADCODE_H
#define BEYONDIV_SSA_DEADCODE_H

#include "ir/Function.h"

namespace biv {
namespace ssa {

/// Deletes instructions (including phi cycles) that no side-effecting
/// instruction or terminator transitively uses.  Returns the number removed.
unsigned removeDeadCode(ir::Function &F);

} // namespace ssa
} // namespace biv

#endif // BEYONDIV_SSA_DEADCODE_H
