//===- ssa/SCCP.h - Sparse conditional constant propagation -----*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wegman-Zadeck sparse conditional constant propagation [WZ91].
///
/// The paper leans on this pass: "Often the initial value coming in from
/// outside the loop can be evaluated and substituted, using an algorithm
/// such as constant propagation [WZ91]" (section 3.1).  Running SCCP before
/// the induction-variable analysis turns symbolic initial values into the
/// numeric ones the figures show.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SSA_SCCP_H
#define BEYONDIV_SSA_SCCP_H

#include "ir/Function.h"

namespace biv {
namespace ssa {

/// Outcome statistics of one SCCP run.
struct SCCPResult {
  unsigned FoldedInstructions = 0; ///< Replaced by literal constants.
  unsigned SimplifiedBranches = 0; ///< CondBr rewritten to Br.
  unsigned RemovedBlocks = 0;      ///< Unreachable blocks deleted.
};

/// Runs SCCP on SSA-form \p F.  Folds provably-constant instructions; when
/// \p SimplifyCFG is set also rewrites always-taken conditional branches and
/// deletes unreachable code.
SCCPResult runSCCP(ir::Function &F, bool SimplifyCFG = true);

} // namespace ssa
} // namespace biv

#endif // BEYONDIV_SSA_SCCP_H
