//===- ssa/SSAVerifier.cpp - SSA dominance verification ----------------------===//

#include "ssa/SSAVerifier.h"
#include "analysis/DominatorTree.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace biv;
using namespace biv::ssa;

std::vector<std::string> biv::ssa::verifySSA(const ir::Function &F) {
  std::vector<std::string> Problems = ir::verify(F);
  if (!Problems.empty())
    return Problems;

  analysis::DominatorTree DT(F);
  // The printer walks the whole function and allocates a name per value, so
  // only build it if something is actually wrong.
  std::optional<ir::Printer> LazyP;
  auto P = [&]() -> ir::Printer & {
    if (!LazyP)
      LazyP.emplace(F);
    return *LazyP;
  };

  for (const ir::BasicBlock *BB : F.blocks())
    for (const ir::Instruction *I : *BB) {
      if (I->opcode() == ir::Opcode::LoadVar ||
          I->opcode() == ir::Opcode::StoreVar) {
        Problems.push_back("scalar access survived SSA construction: " +
                           P().str(I));
        continue;
      }
      if (I->isPhi()) {
        // Each incoming must dominate the end of its incoming block.
        for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx) {
          const auto *Def = ir::dyn_cast<ir::Instruction>(I->operand(Idx));
          if (!Def)
            continue;
          const ir::BasicBlock *In = I->blocks()[Idx];
          if (Def->parent() != In && !DT.properlyDominates(Def->parent(), In))
            Problems.push_back("phi incoming does not dominate edge: " +
                               P().str(I));
        }
        continue;
      }
      for (const ir::Value *Op : I->operands()) {
        const auto *Def = ir::dyn_cast<ir::Instruction>(Op);
        if (Def && !DT.dominates(Def, I))
          Problems.push_back("use not dominated by definition: " + P().str(I) +
                             " uses " + P().nameOf(Def));
      }
    }
  return Problems;
}

void biv::ssa::verifySSAOrDie(const ir::Function &F) {
  std::vector<std::string> Problems = verifySSA(F);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "SSA verification failed for %s:\n",
               F.name().c_str());
  for (const std::string &Msg : Problems)
    std::fprintf(stderr, "  %s\n", Msg.c_str());
  std::fprintf(stderr, "%s", ir::toString(F).c_str());
  std::abort();
}
