//===- ssa/DeadCode.cpp - Dead code elimination -------------------------------===//

#include "ssa/DeadCode.h"
#include "support/Stats.h"
#include <set>
#include <vector>

using namespace biv;

unsigned biv::ssa::removeDeadCode(ir::Function &F) {
  static const stats::Counter NumDceRemoved("ssa.dce_removed");
  // Roots: side effects and terminators.
  std::set<const ir::Instruction *> Live;
  std::vector<const ir::Instruction *> Work;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      if (I->hasSideEffects())
        if (Live.insert(I.get()).second)
          Work.push_back(I.get());
  // Transitive marking through operands.
  while (!Work.empty()) {
    const ir::Instruction *I = Work.back();
    Work.pop_back();
    for (const ir::Value *Op : I->operands())
      if (const auto *Def = ir::dyn_cast<ir::Instruction>(Op))
        if (Live.insert(Def).second)
          Work.push_back(Def);
  }
  // Sweep.
  unsigned Removed = 0;
  for (const auto &BB : F.blocks()) {
    std::vector<ir::Instruction *> Dead;
    for (const auto &I : *BB)
      if (!Live.count(I.get()))
        Dead.push_back(I.get());
    for (ir::Instruction *I : Dead) {
      BB->erase(I);
      ++Removed;
    }
  }
  NumDceRemoved.bump(Removed);
  return Removed;
}
