//===- ssa/DeadCode.cpp - Dead code elimination -------------------------------===//

#include "ssa/DeadCode.h"
#include "support/Stats.h"
#include <cstdint>
#include <vector>

using namespace biv;

unsigned biv::ssa::removeDeadCode(ir::Function &F) {
  static const stats::Counter NumDceRemoved("ssa.dce_removed");
  // Liveness is a bitmap over Instruction::seq() (DESIGN.md §11).
  const unsigned NumInstrs = F.renumberInstructions();
  std::vector<uint8_t> Live(NumInstrs, 0);
  std::vector<const ir::Instruction *> Work;
  // Roots: side effects and terminators.
  for (const ir::BasicBlock *BB : F.blocks())
    for (const ir::Instruction *I : *BB)
      if (I->hasSideEffects() && !Live[I->seq()]) {
        Live[I->seq()] = 1;
        Work.push_back(I);
      }
  // Transitive marking through operands.
  while (!Work.empty()) {
    const ir::Instruction *I = Work.back();
    Work.pop_back();
    for (const ir::Value *Op : I->operands())
      if (const auto *Def = ir::dyn_cast<ir::Instruction>(Op))
        if (!Live[Def->seq()]) {
          Live[Def->seq()] = 1;
          Work.push_back(Def);
        }
  }
  // Sweep: one stable compaction per block.
  unsigned Removed = 0;
  for (ir::BasicBlock *BB : F.blocks())
    Removed += BB->removeInstrsIf(
        [&](const ir::Instruction *I) { return !Live[I->seq()]; });
  NumDceRemoved.bump(Removed);
  return Removed;
}
