//===- ssa/SSABuilder.cpp - SSA construction ---------------------------------===//

#include "ssa/SSABuilder.h"
#include "support/Stats.h"
#include <cstdint>
#include <utility>
#include <vector>

using namespace biv;
using namespace biv::ssa;

ir::Instruction *SSAInfo::phiFor(const ir::BasicBlock *BB,
                                 std::string_view VarName) const {
  for (ir::Instruction *Phi : BB->phis())
    if (const ir::Var *V = Phi->variable())
      if (V->name() == VarName)
        return Phi;
  return nullptr;
}

namespace {

class Builder {
public:
  explicit Builder(ir::Function &F)
      : F(F), DT(F), DF(DT) {}

  SSAInfo run();

private:
  void placePhis();
  void rename(ir::BasicBlock *BB);

  ir::Value *currentDef(const ir::Var *V) {
    const uint32_t H = Head[V->id()];
    return H == NoDef ? F.undef() : StackVal[H];
  }

  /// Follows the replacement chain for a deleted LoadVar result.
  ir::Value *resolve(ir::Value *V) {
    while (const auto *I = ir::dyn_cast<ir::Instruction>(V)) {
      if (I->seq() >= RepBySeq.size())
        break;
      ir::Value *R = RepBySeq[I->seq()];
      if (!R)
        break;
      V = R;
    }
    return V;
  }

  ir::Function &F;
  analysis::DominatorTree DT;
  analysis::DominanceFrontier DF;
  SSAInfo Info;

  /// Reaching-definition stacks for every var share one pool: StackVal[E]
  /// is a definition, StackPrev[E] the previous definition of the same var,
  /// Head[var id] the top of that var's stack.  One growing pool instead of
  /// a heap vector per variable.
  static constexpr uint32_t NoDef = ~uint32_t(0);
  std::vector<ir::Value *> StackVal;
  std::vector<uint32_t> StackPrev;
  std::vector<uint32_t> Head;
  /// LoadVar replacement, indexed by Instruction::seq() (renumbered after
  /// phi placement; erasure is deferred so seqs stay dense during rename).
  std::vector<ir::Value *> RepBySeq;
  /// Undo log for the rename walk: (var id, head entry to restore).  Each
  /// frame saves a var at most once, tracked by SavedFrame stamps -- a stale
  /// stamp only costs a redundant (still correct) undo entry.
  std::vector<std::pair<uint32_t, uint32_t>> Undo;
  std::vector<unsigned> SavedFrame;
  unsigned FrameCounter = 0;

  std::vector<ir::Instruction *> ToErase;
};

SSAInfo Builder::run() {
  placePhis();
  // Give the phis seqs too; RepBySeq and the SCCP tables index off this
  // numbering until the pipeline renumbers again after erasure.
  F.renumberInstructions();
  RepBySeq.assign(F.instrSeqBound(), nullptr);
  Head.assign(F.vars().size(), NoDef);
  SavedFrame.assign(F.vars().size(), 0);
  rename(F.entry());
  // Delete the now-dead variable accesses in one compaction per block (the
  // loads and stores of a big block all die at once; per-instruction erase
  // would shift the tail per call).
  if (!ToErase.empty()) {
    std::vector<uint8_t> DeadBySeq(F.instrSeqBound(), 0);
    for (ir::Instruction *I : ToErase)
      DeadBySeq[I->seq()] = 1;
    for (ir::BasicBlock *BB : F.blocks())
      BB->removeInstrsIf(
          [&](const ir::Instruction *I) { return DeadBySeq[I->seq()] != 0; });
  }
  return std::move(Info);
}

void Builder::placePhis() {
  const size_t NumVars = F.vars().size();
  const size_t NumBlocks = F.numBlocks();
  if (!NumVars || !NumBlocks)
    return;

  // Store sites per var in CSR form: for each var, the distinct blocks
  // containing a StoreVar of it, in block order.  One pass to count, one to
  // fill; consecutive stores to the same var in one block dedupe via Last.
  std::vector<uint32_t> Start(NumVars + 1, 0);
  std::vector<uint32_t> Last(NumVars, ~uint32_t(0));
  for (const ir::BasicBlock *BB : F.blocks())
    for (const ir::Instruction *I : *BB)
      if (I->opcode() == ir::Opcode::StoreVar &&
          Last[I->variable()->id()] != BB->id()) {
        Last[I->variable()->id()] = BB->id();
        ++Start[I->variable()->id() + 1];
      }
  for (size_t V = 0; V < NumVars; ++V)
    Start[V + 1] += Start[V];
  std::vector<ir::BasicBlock *> StoreBlocks(Start[NumVars]);
  std::vector<uint32_t> Fill(Start.begin(), Start.end() - 1);
  Last.assign(NumVars, ~uint32_t(0));
  for (ir::BasicBlock *BB : F.blocks())
    for (const ir::Instruction *I : *BB)
      if (I->opcode() == ir::Opcode::StoreVar &&
          Last[I->variable()->id()] != BB->id()) {
        Last[I->variable()->id()] = BB->id();
        StoreBlocks[Fill[I->variable()->id()]++] = BB;
      }

  // Iterated dominance frontier per variable, seeded by its store blocks.
  // HasStore/HasPhi are epoch stamps (one epoch per var) over block ids.
  std::vector<uint32_t> StoreStamp(NumBlocks, 0), PhiStamp(NumBlocks, 0);
  // Insertion index for the next phi per block: phis() rescans the block
  // top on every call, which is quadratic when one header collects a phi
  // per variable, so the count is tracked here instead.
  std::vector<uint32_t> NumPhis(NumBlocks, 0);
  for (ir::BasicBlock *BB : F.blocks())
    NumPhis[BB->id()] = uint32_t(BB->phis().size());
  std::vector<ir::BasicBlock *> Work;
  for (size_t VI = 0; VI < NumVars; ++VI) {
    ir::Var *V = F.vars()[VI];
    const uint32_t Epoch = uint32_t(VI) + 1;
    Work.clear();
    for (uint32_t S = Start[VI]; S < Start[VI + 1]; ++S) {
      StoreStamp[StoreBlocks[S]->id()] = Epoch;
      Work.push_back(StoreBlocks[S]);
    }
    while (!Work.empty()) {
      ir::BasicBlock *BB = Work.back();
      Work.pop_back();
      for (ir::BasicBlock *Frontier : DF.frontier(BB)) {
        if (PhiStamp[Frontier->id()] == Epoch)
          continue;
        PhiStamp[Frontier->id()] = Epoch;
        ir::Instruction *P =
            F.newInstr(ir::Opcode::Phi, {}, F.uniqueName(V->name()));
        Frontier->insertAt(NumPhis[Frontier->id()]++, P);
        P->setVariable(V);
        ++Info.PhisPlaced;
        // A phi is itself a definition; keep iterating.
        if (StoreStamp[Frontier->id()] != Epoch) {
          StoreStamp[Frontier->id()] = Epoch;
          Work.push_back(Frontier);
        }
      }
    }
  }
}

void Builder::rename(ir::BasicBlock *BB) {
  // Remember stack depths to pop on the way out.
  const size_t UndoMark = Undo.size();
  const unsigned Frame = ++FrameCounter;
  auto pushDef = [&](const ir::Var *V, ir::Value *Def) {
    if (SavedFrame[V->id()] != Frame) {
      SavedFrame[V->id()] = Frame;
      Undo.emplace_back(V->id(), Head[V->id()]);
    }
    StackVal.push_back(Def);
    StackPrev.push_back(Head[V->id()]);
    Head[V->id()] = uint32_t(StackVal.size() - 1);
  };

  for (ir::Instruction *I : *BB) {
    // Rewrite operands through pending load replacements first.  Phi
    // operands are filled in by predecessors and must not be rewritten here.
    if (!I->isPhi())
      for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx)
        I->setOperand(Idx, resolve(I->operand(Idx)));

    switch (I->opcode()) {
    case ir::Opcode::Phi:
      if (const ir::Var *V = I->variable())
        pushDef(V, I);
      break;
    case ir::Opcode::LoadVar:
      RepBySeq[I->seq()] = currentDef(I->variable());
      ToErase.push_back(I);
      break;
    case ir::Opcode::StoreVar:
      pushDef(I->variable(), I->operand(0));
      ToErase.push_back(I);
      break;
    default:
      break;
    }
  }

  // Fill phi operands of successors with the defs reaching this edge.
  for (ir::BasicBlock *Succ : BB->successors())
    for (ir::Instruction *Phi : Succ->phis())
      if (const ir::Var *V = Phi->variable())
        Phi->addIncoming(currentDef(V), BB);

  for (ir::BasicBlock *Child : DT.children(BB))
    rename(Child);

  while (Undo.size() > UndoMark) {
    auto [VarId, OldHead] = Undo.back();
    Undo.pop_back();
    Head[VarId] = OldHead;
  }
}

} // namespace

SSAInfo biv::ssa::buildSSA(ir::Function &F) {
  static const stats::Timer SSAPhase("phase.ssa");
  static const stats::Counter NumPhisPlaced("ssa.phis_placed");
  stats::ScopedSpan Span(SSAPhase);
  F.recomputePreds();
  SSAInfo Info = Builder(F).run();
  NumPhisPlaced.bump(Info.PhisPlaced);
  return Info;
}
