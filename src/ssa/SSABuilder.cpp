//===- ssa/SSABuilder.cpp - SSA construction ---------------------------------===//

#include "ssa/SSABuilder.h"
#include "support/Stats.h"
#include <set>
#include <vector>

using namespace biv;
using namespace biv::ssa;

ir::Instruction *SSAInfo::phiFor(const ir::BasicBlock *BB,
                                 const std::string &VarName) const {
  for (ir::Instruction *Phi : BB->phis()) {
    auto It = PhiVar.find(Phi);
    if (It != PhiVar.end() && It->second->name() == VarName)
      return Phi;
  }
  return nullptr;
}

namespace {

class Builder {
public:
  explicit Builder(ir::Function &F)
      : F(F), DT(F), DF(DT) {}

  SSAInfo run();

private:
  void placePhis();
  void rename(ir::BasicBlock *BB);
  ir::Value *currentDef(const ir::Var *V) {
    auto It = Stacks.find(V);
    if (It == Stacks.end() || It->second.empty())
      return F.undef();
    return It->second.back();
  }
  /// Follows the replacement chain for a deleted LoadVar result.
  ir::Value *resolve(ir::Value *V) {
    auto It = Replacement.find(V);
    while (It != Replacement.end()) {
      V = It->second;
      It = Replacement.find(V);
    }
    return V;
  }

  ir::Function &F;
  analysis::DominatorTree DT;
  analysis::DominanceFrontier DF;
  SSAInfo Info;
  std::map<const ir::Var *, std::vector<ir::Value *>> Stacks;
  std::map<ir::Value *, ir::Value *> Replacement;
  std::map<ir::Instruction *, const ir::Var *> PhiOf;
  std::vector<ir::Instruction *> ToErase;
};

SSAInfo Builder::run() {
  placePhis();
  rename(F.entry());
  // Delete the now-dead variable accesses.
  for (ir::Instruction *I : ToErase)
    I->parent()->erase(I);
  for (const auto &[Phi, Var] : PhiOf)
    Info.PhiVar[Phi] = Var;
  return std::move(Info);
}

void Builder::placePhis() {
  // Iterated dominance frontier per variable, seeded by its store blocks.
  for (const auto &VarPtr : F.vars()) {
    const ir::Var *V = VarPtr.get();
    std::vector<ir::BasicBlock *> Work;
    std::set<unsigned> HasStore;
    for (const auto &BB : F.blocks())
      for (const auto &I : *BB)
        if (I->opcode() == ir::Opcode::StoreVar && I->variable() == V &&
            HasStore.insert(BB->id()).second)
          Work.push_back(BB.get());
    std::set<unsigned> HasPhi;
    while (!Work.empty()) {
      ir::BasicBlock *BB = Work.back();
      Work.pop_back();
      for (ir::BasicBlock *Frontier : DF.frontier(BB)) {
        if (!HasPhi.insert(Frontier->id()).second)
          continue;
        auto Phi = std::make_unique<ir::Instruction>(
            ir::Opcode::Phi, std::vector<ir::Value *>{},
            F.uniqueName(V->name()));
        ir::Instruction *P =
            Frontier->insertAt(Frontier->phis().size(), std::move(Phi));
        PhiOf[P] = V;
        ++Info.PhisPlaced;
        // A phi is itself a definition; keep iterating.
        if (!HasStore.count(Frontier->id())) {
          HasStore.insert(Frontier->id());
          Work.push_back(Frontier);
        }
      }
    }
  }
}

void Builder::rename(ir::BasicBlock *BB) {
  // Remember stack depths to pop on the way out.
  std::map<const ir::Var *, size_t> Saved;
  auto pushDef = [&](const ir::Var *V, ir::Value *Def) {
    auto &Stack = Stacks[V];
    if (!Saved.count(V))
      Saved[V] = Stack.size();
    Stack.push_back(Def);
  };

  for (const auto &IPtr : *BB) {
    ir::Instruction *I = IPtr.get();
    // Rewrite operands through pending load replacements first.  Phi
    // operands are filled in by predecessors and must not be rewritten here.
    if (!I->isPhi())
      for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx)
        I->setOperand(Idx, resolve(I->operand(Idx)));

    switch (I->opcode()) {
    case ir::Opcode::Phi: {
      auto It = PhiOf.find(I);
      if (It != PhiOf.end())
        pushDef(It->second, I);
      break;
    }
    case ir::Opcode::LoadVar:
      Replacement[I] = currentDef(I->variable());
      ToErase.push_back(I);
      break;
    case ir::Opcode::StoreVar:
      pushDef(I->variable(), I->operand(0));
      ToErase.push_back(I);
      break;
    default:
      break;
    }
  }

  // Fill phi operands of successors with the defs reaching this edge.
  for (ir::BasicBlock *Succ : BB->successors())
    for (ir::Instruction *Phi : Succ->phis()) {
      auto It = PhiOf.find(Phi);
      if (It != PhiOf.end())
        Phi->addIncoming(currentDef(It->second), BB);
    }

  for (ir::BasicBlock *Child : DT.children(BB))
    rename(Child);

  for (const auto &[V, Depth] : Saved)
    Stacks[V].resize(Depth);
}

} // namespace

SSAInfo biv::ssa::buildSSA(ir::Function &F) {
  static const stats::Timer SSAPhase("phase.ssa");
  static const stats::Counter NumPhisPlaced("ssa.phis_placed");
  stats::ScopedSpan Span(SSAPhase);
  F.recomputePreds();
  SSAInfo Info = Builder(F).run();
  NumPhisPlaced.bump(Info.PhisPlaced);
  return Info;
}
