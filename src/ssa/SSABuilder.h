//===- ssa/SSABuilder.h - SSA construction ----------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA construction in the style of Cytron, Ferrante, Rosen, Wegman and
/// Zadeck [CFR+91], the form the paper's algorithm runs on: phi placement at
/// iterated dominance frontiers of the blocks storing each scalar variable,
/// followed by a dominator-tree renaming walk that deletes every LoadVar /
/// StoreVar and rewires uses to the unique reaching SSA definition.
///
/// The builder keeps no pointer-keyed maps (DESIGN.md §11): each inserted
/// phi records the Var it merges in Instruction::variable() (the same slot
/// LoadVar/StoreVar use), rename stacks are indexed by Var::id(), phi/store
/// marks are epoch-stamped per block id, and load replacements are a flat
/// vector over Instruction::seq().
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SSA_SSABUILDER_H
#define BEYONDIV_SSA_SSABUILDER_H

#include "analysis/DominatorTree.h"
#include "ir/Function.h"
#include <string_view>

namespace biv {
namespace ssa {

/// What SSA construction learned; the IV analysis and tests use it to locate
/// the phi of a given source variable in a given block.  The phi->variable
/// association itself lives on the instructions (Instruction::variable()).
struct SSAInfo {
  /// Number of phis placed (for stats/benches).
  unsigned PhisPlaced = 0;

  /// Finds the phi merging \p VarName at the top of \p BB, or null.
  ir::Instruction *phiFor(const ir::BasicBlock *BB,
                          std::string_view VarName) const;
};

/// Converts \p F into SSA form in place.  Requires preds to be computed.
/// Every LoadVar/StoreVar disappears; phis are named after their variable.
SSAInfo buildSSA(ir::Function &F);

} // namespace ssa
} // namespace biv

#endif // BEYONDIV_SSA_SSABUILDER_H
