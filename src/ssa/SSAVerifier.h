//===- ssa/SSAVerifier.h - SSA dominance verification -----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies the defining SSA properties on top of the structural checks in
/// ir/Verifier.h: no LoadVar/StoreVar remains, every use is dominated by its
/// unique definition, and phi incomings are dominated at the incoming edge.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SSA_SSAVERIFIER_H
#define BEYONDIV_SSA_SSAVERIFIER_H

#include "ir/Function.h"
#include <string>
#include <vector>

namespace biv {
namespace ssa {

/// Returns human-readable SSA violations; empty means well formed.
std::vector<std::string> verifySSA(const ir::Function &F);

/// Aborts with diagnostics when verifySSA(F) is non-empty.
void verifySSAOrDie(const ir::Function &F);

} // namespace ssa
} // namespace biv

#endif // BEYONDIV_SSA_SSAVERIFIER_H
