//===- ssa/SCCP.cpp - Sparse conditional constant propagation ----------------===//

#include "ssa/SCCP.h"
#include "support/Stats.h"
#include <map>
#include <optional>
#include <set>
#include <vector>

using namespace biv;
using namespace biv::ssa;

namespace {

/// Three-level lattice: Top (undefined so far), Const, Bottom (overdefined).
struct LatticeVal {
  enum Level { Top, Const, Bottom } Lvl = Top;
  int64_t Val = 0;

  static LatticeVal top() { return {}; }
  static LatticeVal constant(int64_t V) { return {Const, V}; }
  static LatticeVal bottom() { return {Bottom, 0}; }

  bool isTop() const { return Lvl == Top; }
  bool isConst() const { return Lvl == Const; }
  bool isBottom() const { return Lvl == Bottom; }

  bool operator==(const LatticeVal &O) const {
    return Lvl == O.Lvl && (Lvl != Const || Val == O.Val);
  }
};

/// Folds \p Op over constants; nullopt when the result is not representable
/// (division by zero, huge exponent) and must go to Bottom.
std::optional<int64_t> foldBinary(ir::Opcode Op, int64_t L, int64_t R) {
  switch (Op) {
  case ir::Opcode::Add:
    return L + R;
  case ir::Opcode::Sub:
    return L - R;
  case ir::Opcode::Mul:
    return L * R;
  case ir::Opcode::Div:
    if (R == 0)
      return std::nullopt;
    return L / R;
  case ir::Opcode::Exp: {
    if (R < 0 || R > 62)
      return std::nullopt;
    int64_t Result = 1;
    for (int64_t I = 0; I < R; ++I) {
      // Crude overflow guard; Bottom is always safe.
      if (Result > (int64_t(1) << 62) / (L == 0 ? 1 : (L < 0 ? -L : L)))
        return std::nullopt;
      Result *= L;
    }
    return Result;
  }
  case ir::Opcode::CmpEQ:
    return L == R;
  case ir::Opcode::CmpNE:
    return L != R;
  case ir::Opcode::CmpLT:
    return L < R;
  case ir::Opcode::CmpLE:
    return L <= R;
  case ir::Opcode::CmpGT:
    return L > R;
  case ir::Opcode::CmpGE:
    return L >= R;
  default:
    return std::nullopt;
  }
}

class SCCPSolver {
public:
  explicit SCCPSolver(ir::Function &F) : F(F) {}

  SCCPResult run(bool SimplifyCFG);

private:
  LatticeVal valueOf(const ir::Value *V) {
    if (const auto *C = ir::dyn_cast<ir::Constant>(V))
      return LatticeVal::constant(C->value());
    if (ir::isa<ir::Argument>(V))
      return LatticeVal::bottom();
    if (ir::isa<ir::UndefValue>(V))
      return LatticeVal::top();
    auto It = State.find(V);
    return It == State.end() ? LatticeVal::top() : It->second;
  }

  void setValue(const ir::Instruction *I, LatticeVal LV) {
    LatticeVal &Slot = State[I];
    // Values only ever move down the lattice.
    if (Slot == LV || Slot.isBottom())
      return;
    Slot = LV;
    auto It = Users.find(I);
    if (It != Users.end())
      for (ir::Instruction *U : It->second)
        InstWorklist.push_back(U);
  }

  void markEdge(ir::BasicBlock *From, ir::BasicBlock *To) {
    if (!ExecEdges.insert({From->id(), To->id()}).second)
      return;
    if (ReachableBlocks.insert(To->id()).second)
      BlockWorklist.push_back(To);
    else
      // Re-evaluate the phis: a new incoming edge became live.
      for (ir::Instruction *Phi : To->phis())
        InstWorklist.push_back(Phi);
  }

  void visit(ir::Instruction *I);
  void visitBlock(ir::BasicBlock *BB);

  ir::Function &F;
  std::map<const ir::Value *, LatticeVal> State;
  std::map<const ir::Value *, std::vector<ir::Instruction *>> Users;
  std::set<std::pair<unsigned, unsigned>> ExecEdges;
  std::set<unsigned> ReachableBlocks;
  std::vector<ir::BasicBlock *> BlockWorklist;
  std::vector<ir::Instruction *> InstWorklist;
};

void SCCPSolver::visit(ir::Instruction *I) {
  if (!ReachableBlocks.count(I->parent()->id()))
    return;
  switch (I->opcode()) {
  case ir::Opcode::Phi: {
    // Meet over live incoming edges only.
    LatticeVal Merged = LatticeVal::top();
    for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx) {
      ir::BasicBlock *In = I->blocks()[Idx];
      if (!ExecEdges.count({In->id(), I->parent()->id()}))
        continue;
      LatticeVal V = valueOf(I->operand(Idx));
      if (V.isTop())
        continue;
      if (Merged.isTop())
        Merged = V;
      else if (!(Merged == V))
        Merged = LatticeVal::bottom();
    }
    setValue(I, Merged);
    return;
  }
  case ir::Opcode::Copy:
    setValue(I, valueOf(I->operand(0)));
    return;
  case ir::Opcode::Neg: {
    LatticeVal V = valueOf(I->operand(0));
    if (V.isConst())
      setValue(I, LatticeVal::constant(-V.Val));
    else
      setValue(I, V);
    return;
  }
  case ir::Opcode::ArrayLoad:
    setValue(I, LatticeVal::bottom());
    return;
  case ir::Opcode::ArrayStore:
  case ir::Opcode::Ret:
    return;
  case ir::Opcode::Br:
    markEdge(I->parent(), I->blocks()[0]);
    return;
  case ir::Opcode::CondBr: {
    LatticeVal C = valueOf(I->operand(0));
    if (C.isTop())
      return;
    if (C.isConst()) {
      markEdge(I->parent(), I->blocks()[C.Val != 0 ? 0 : 1]);
    } else {
      markEdge(I->parent(), I->blocks()[0]);
      markEdge(I->parent(), I->blocks()[1]);
    }
    return;
  }
  case ir::Opcode::LoadVar:
  case ir::Opcode::StoreVar:
    assert(false && "SCCP requires SSA form");
    return;
  default: {
    // Binary arithmetic and comparisons.
    assert(I->numOperands() == 2 && "expected binary operation");
    LatticeVal L = valueOf(I->operand(0));
    LatticeVal R = valueOf(I->operand(1));
    if (L.isBottom() || R.isBottom()) {
      setValue(I, LatticeVal::bottom());
      return;
    }
    if (L.isTop() || R.isTop())
      return;
    if (std::optional<int64_t> Folded = foldBinary(I->opcode(), L.Val, R.Val))
      setValue(I, LatticeVal::constant(*Folded));
    else
      setValue(I, LatticeVal::bottom());
    return;
  }
  }
}

void SCCPSolver::visitBlock(ir::BasicBlock *BB) {
  for (const auto &I : *BB)
    visit(I.get());
}

SCCPResult SCCPSolver::run(bool SimplifyCFG) {
  // Record users for sparse propagation.
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      for (ir::Value *Op : I->operands())
        if (ir::isa<ir::Instruction>(Op))
          Users[Op].push_back(I.get());

  ReachableBlocks.insert(F.entry()->id());
  BlockWorklist.push_back(F.entry());
  while (!BlockWorklist.empty() || !InstWorklist.empty()) {
    while (!InstWorklist.empty()) {
      ir::Instruction *I = InstWorklist.back();
      InstWorklist.pop_back();
      visit(I);
    }
    if (!BlockWorklist.empty()) {
      ir::BasicBlock *BB = BlockWorklist.back();
      BlockWorklist.pop_back();
      visitBlock(BB);
    }
  }

  SCCPResult Result;
  // Replace constant instructions.
  std::vector<ir::Instruction *> Dead;
  for (const auto &BB : F.blocks()) {
    if (!ReachableBlocks.count(BB->id()))
      continue;
    for (const auto &I : *BB) {
      if (I->hasSideEffects() || I->isTerminator())
        continue;
      LatticeVal V = valueOf(I.get());
      if (!V.isConst())
        continue;
      F.replaceAllUsesWith(I.get(), F.constant(V.Val));
      Dead.push_back(I.get());
      ++Result.FoldedInstructions;
    }
  }
  for (ir::Instruction *I : Dead)
    I->parent()->erase(I);

  if (!SimplifyCFG)
    return Result;

  // Rewrite decided conditional branches and drop the dead edges' phi
  // incomings before deleting unreachable blocks.
  for (const auto &BB : F.blocks()) {
    if (!ReachableBlocks.count(BB->id()))
      continue;
    ir::Instruction *T = BB->terminator();
    if (!T || T->opcode() != ir::Opcode::CondBr)
      continue;
    LatticeVal C = valueOf(T->operand(0));
    if (!C.isConst())
      continue;
    ir::BasicBlock *Live = T->blocks()[C.Val != 0 ? 0 : 1];
    ir::BasicBlock *DeadSucc = T->blocks()[C.Val != 0 ? 1 : 0];
    if (Live != DeadSucc)
      for (ir::Instruction *Phi : DeadSucc->phis())
        for (unsigned Idx = Phi->numOperands(); Idx-- > 0;)
          if (Phi->blocks()[Idx] == BB.get())
            Phi->removeIncoming(Idx);
    BB->erase(T);
    auto Br = std::make_unique<ir::Instruction>(ir::Opcode::Br,
                                                std::vector<ir::Value *>{});
    Br->addBlock(Live);
    BB->append(std::move(Br));
    ++Result.SimplifiedBranches;
  }
  F.recomputePreds();
  Result.RemovedBlocks = F.removeUnreachableBlocks();
  return Result;
}

} // namespace

SCCPResult biv::ssa::runSCCP(ir::Function &F, bool SimplifyCFG) {
  static const stats::Timer SCCPPhase("phase.sccp");
  static const stats::Counter NumFolded("ssa.sccp_folded");
  stats::ScopedSpan Span(SCCPPhase);
  SCCPResult R = SCCPSolver(F).run(SimplifyCFG);
  NumFolded.bump(R.FoldedInstructions);
  return R;
}
