//===- ssa/SCCP.cpp - Sparse conditional constant propagation ----------------===//

#include "ssa/SCCP.h"
#include "support/Stats.h"
#include <cstdint>
#include <optional>
#include <vector>

using namespace biv;
using namespace biv::ssa;

namespace {

/// Three-level lattice: Top (undefined so far), Const, Bottom (overdefined).
struct LatticeVal {
  enum Level { Top, Const, Bottom } Lvl = Top;
  int64_t Val = 0;

  static LatticeVal top() { return {}; }
  static LatticeVal constant(int64_t V) { return {Const, V}; }
  static LatticeVal bottom() { return {Bottom, 0}; }

  bool isTop() const { return Lvl == Top; }
  bool isConst() const { return Lvl == Const; }
  bool isBottom() const { return Lvl == Bottom; }

  bool operator==(const LatticeVal &O) const {
    return Lvl == O.Lvl && (Lvl != Const || Val == O.Val);
  }
};

/// Folds \p Op over constants; nullopt when the result is not representable
/// (division by zero, huge exponent) and must go to Bottom.
std::optional<int64_t> foldBinary(ir::Opcode Op, int64_t L, int64_t R) {
  switch (Op) {
  case ir::Opcode::Add:
    return L + R;
  case ir::Opcode::Sub:
    return L - R;
  case ir::Opcode::Mul:
    return L * R;
  case ir::Opcode::Div:
    if (R == 0)
      return std::nullopt;
    return L / R;
  case ir::Opcode::Exp: {
    if (R < 0 || R > 62)
      return std::nullopt;
    int64_t Result = 1;
    for (int64_t I = 0; I < R; ++I) {
      // Crude overflow guard; Bottom is always safe.
      if (Result > (int64_t(1) << 62) / (L == 0 ? 1 : (L < 0 ? -L : L)))
        return std::nullopt;
      Result *= L;
    }
    return Result;
  }
  case ir::Opcode::CmpEQ:
    return L == R;
  case ir::Opcode::CmpNE:
    return L != R;
  case ir::Opcode::CmpLT:
    return L < R;
  case ir::Opcode::CmpLE:
    return L <= R;
  case ir::Opcode::CmpGT:
    return L > R;
  case ir::Opcode::CmpGE:
    return L >= R;
  default:
    return std::nullopt;
  }
}

/// Dense-table SCCP (DESIGN.md §11): lattice state and the def->users lists
/// are flat vectors over Instruction::seq(), executable edges are a two-bit
/// mask per source block (a terminator has at most two successors), and
/// block reachability is a byte per block id.  No pointer-keyed containers.
class SCCPSolver {
public:
  explicit SCCPSolver(ir::Function &F) : F(F) {}

  SCCPResult run(bool SimplifyCFG);

private:
  LatticeVal valueOf(const ir::Value *V) {
    if (const auto *C = ir::dyn_cast<ir::Constant>(V))
      return LatticeVal::constant(C->value());
    if (ir::isa<ir::Argument>(V))
      return LatticeVal::bottom();
    if (ir::isa<ir::UndefValue>(V))
      return LatticeVal::top();
    return State[ir::cast<ir::Instruction>(V)->seq()];
  }

  void setValue(const ir::Instruction *I, LatticeVal LV) {
    LatticeVal &Slot = State[I->seq()];
    // Values only ever move down the lattice.
    if (Slot == LV || Slot.isBottom())
      return;
    Slot = LV;
    for (uint32_t U = UserStart[I->seq()]; U < UserStart[I->seq() + 1]; ++U)
      InstWorklist.push_back(UserList[U]);
  }

  /// Marks successor slot \p Slot of \p From's terminator executable.
  void markEdge(ir::BasicBlock *From, unsigned Slot) {
    const uint8_t Bit = uint8_t(1u << Slot);
    if (EdgeMask[From->id()] & Bit)
      return;
    EdgeMask[From->id()] |= Bit;
    ir::BasicBlock *To = From->terminator()->blocks()[Slot];
    if (!Reachable[To->id()]) {
      Reachable[To->id()] = 1;
      BlockWorklist.push_back(To);
    } else {
      // Re-evaluate the phis: a new incoming edge became live.
      for (ir::Instruction *Phi : To->phis())
        InstWorklist.push_back(Phi);
    }
  }

  /// True when some executable successor slot of \p From targets \p To.
  bool edgeExecutable(const ir::BasicBlock *From,
                      const ir::BasicBlock *To) const {
    const uint8_t Mask = EdgeMask[From->id()];
    if (!Mask)
      return false;
    std::span<ir::BasicBlock *const> Succs = From->successors();
    for (unsigned Slot = 0; Slot < Succs.size(); ++Slot)
      if ((Mask & (1u << Slot)) && Succs[Slot] == To)
        return true;
    return false;
  }

  void visit(ir::Instruction *I);
  void visitBlock(ir::BasicBlock *BB);

  ir::Function &F;
  /// Lattice state per Instruction::seq().
  std::vector<LatticeVal> State;
  /// Instruction users of each instruction's value, CSR over seqs.
  std::vector<uint32_t> UserStart;
  std::vector<ir::Instruction *> UserList;
  /// Executable-successor bits per source block id (bit k = slot k).
  std::vector<uint8_t> EdgeMask;
  std::vector<uint8_t> Reachable;
  std::vector<ir::BasicBlock *> BlockWorklist;
  std::vector<ir::Instruction *> InstWorklist;
};

void SCCPSolver::visit(ir::Instruction *I) {
  if (!Reachable[I->parent()->id()])
    return;
  switch (I->opcode()) {
  case ir::Opcode::Phi: {
    // Meet over live incoming edges only.
    LatticeVal Merged = LatticeVal::top();
    for (unsigned Idx = 0; Idx < I->numOperands(); ++Idx) {
      ir::BasicBlock *In = I->blocks()[Idx];
      if (!edgeExecutable(In, I->parent()))
        continue;
      LatticeVal V = valueOf(I->operand(Idx));
      if (V.isTop())
        continue;
      if (Merged.isTop())
        Merged = V;
      else if (!(Merged == V))
        Merged = LatticeVal::bottom();
    }
    setValue(I, Merged);
    return;
  }
  case ir::Opcode::Copy:
    setValue(I, valueOf(I->operand(0)));
    return;
  case ir::Opcode::Neg: {
    LatticeVal V = valueOf(I->operand(0));
    if (V.isConst())
      setValue(I, LatticeVal::constant(-V.Val));
    else
      setValue(I, V);
    return;
  }
  case ir::Opcode::ArrayLoad:
    setValue(I, LatticeVal::bottom());
    return;
  case ir::Opcode::ArrayStore:
  case ir::Opcode::Ret:
    return;
  case ir::Opcode::Br:
    markEdge(I->parent(), 0);
    return;
  case ir::Opcode::CondBr: {
    LatticeVal C = valueOf(I->operand(0));
    if (C.isTop())
      return;
    if (C.isConst()) {
      markEdge(I->parent(), C.Val != 0 ? 0 : 1);
    } else {
      markEdge(I->parent(), 0);
      markEdge(I->parent(), 1);
    }
    return;
  }
  case ir::Opcode::LoadVar:
  case ir::Opcode::StoreVar:
    assert(false && "SCCP requires SSA form");
    return;
  default: {
    // Binary arithmetic and comparisons.
    assert(I->numOperands() == 2 && "expected binary operation");
    LatticeVal L = valueOf(I->operand(0));
    LatticeVal R = valueOf(I->operand(1));
    if (L.isBottom() || R.isBottom()) {
      setValue(I, LatticeVal::bottom());
      return;
    }
    if (L.isTop() || R.isTop())
      return;
    if (std::optional<int64_t> Folded = foldBinary(I->opcode(), L.Val, R.Val))
      setValue(I, LatticeVal::constant(*Folded));
    else
      setValue(I, LatticeVal::bottom());
    return;
  }
  }
}

void SCCPSolver::visitBlock(ir::BasicBlock *BB) {
  for (ir::Instruction *I : *BB)
    visit(I);
}

SCCPResult SCCPSolver::run(bool SimplifyCFG) {
  // Downstream phases renumber for themselves, so renumbering here is safe
  // and guarantees seqs are dense even after SSA's deferred erasures.
  const unsigned NumInstrs = F.renumberInstructions();
  State.assign(NumInstrs, LatticeVal::top());

  // Record users for sparse propagation: count per def, prefix-sum, fill.
  UserStart.assign(NumInstrs + 1, 0);
  for (const ir::BasicBlock *BB : F.blocks())
    for (const ir::Instruction *I : *BB)
      for (const ir::Value *Op : I->operands())
        if (const auto *Def = ir::dyn_cast<ir::Instruction>(Op))
          ++UserStart[Def->seq() + 1];
  for (unsigned S = 0; S < NumInstrs; ++S)
    UserStart[S + 1] += UserStart[S];
  UserList.resize(UserStart[NumInstrs]);
  std::vector<uint32_t> Fill(UserStart.begin(), UserStart.end() - 1);
  for (const ir::BasicBlock *BB : F.blocks())
    for (ir::Instruction *I : *BB)
      for (const ir::Value *Op : I->operands())
        if (const auto *Def = ir::dyn_cast<ir::Instruction>(Op))
          UserList[Fill[Def->seq()]++] = I;

  EdgeMask.assign(F.numBlocks(), 0);
  Reachable.assign(F.numBlocks(), 0);
  Reachable[F.entry()->id()] = 1;
  BlockWorklist.push_back(F.entry());
  while (!BlockWorklist.empty() || !InstWorklist.empty()) {
    while (!InstWorklist.empty()) {
      ir::Instruction *I = InstWorklist.back();
      InstWorklist.pop_back();
      visit(I);
    }
    if (!BlockWorklist.empty()) {
      ir::BasicBlock *BB = BlockWorklist.back();
      BlockWorklist.pop_back();
      visitBlock(BB);
    }
  }

  SCCPResult Result;
  // Replace constant instructions.
  std::vector<ir::Instruction *> Dead;
  for (ir::BasicBlock *BB : F.blocks()) {
    if (!Reachable[BB->id()])
      continue;
    for (ir::Instruction *I : *BB) {
      if (I->hasSideEffects() || I->isTerminator())
        continue;
      LatticeVal V = valueOf(I);
      if (!V.isConst())
        continue;
      F.replaceAllUsesWith(I, F.constant(V.Val));
      Dead.push_back(I);
      ++Result.FoldedInstructions;
    }
  }
  for (ir::Instruction *I : Dead)
    I->parent()->erase(I);

  if (!SimplifyCFG)
    return Result;

  // Rewrite decided conditional branches and drop the dead edges' phi
  // incomings before deleting unreachable blocks.
  for (ir::BasicBlock *BB : F.blocks()) {
    if (!Reachable[BB->id()])
      continue;
    ir::Instruction *T = BB->terminator();
    if (!T || T->opcode() != ir::Opcode::CondBr)
      continue;
    LatticeVal C = valueOf(T->operand(0));
    if (!C.isConst())
      continue;
    ir::BasicBlock *Live = T->blocks()[C.Val != 0 ? 0 : 1];
    ir::BasicBlock *DeadSucc = T->blocks()[C.Val != 0 ? 1 : 0];
    if (Live != DeadSucc)
      for (ir::Instruction *Phi : DeadSucc->phis())
        for (unsigned Idx = Phi->numOperands(); Idx-- > 0;)
          if (Phi->blocks()[Idx] == BB)
            Phi->removeIncoming(Idx);
    BB->erase(T);
    ir::Instruction *Br = F.newInstr(ir::Opcode::Br);
    Br->addBlock(Live);
    BB->append(Br);
    ++Result.SimplifiedBranches;
  }
  F.recomputePreds();
  Result.RemovedBlocks = F.removeUnreachableBlocks();
  return Result;
}

} // namespace

SCCPResult biv::ssa::runSCCP(ir::Function &F, bool SimplifyCFG) {
  static const stats::Timer SCCPPhase("phase.sccp");
  static const stats::Counter NumFolded("ssa.sccp_folded");
  stats::ScopedSpan Span(SCCPPhase);
  SCCPResult R = SCCPSolver(F).run(SimplifyCFG);
  NumFolded.bump(R.FoldedInstructions);
  return R;
}
