//===- interp/Interpreter.cpp - Direct IR interpreter -------------------------===//

#include "interp/Interpreter.h"
#include "support/Stats.h"
#include <cassert>

using namespace biv;
using namespace biv::interp;

const std::vector<int64_t> &
ExecutionTrace::sequenceOf(const ir::Instruction *I) const {
  static const std::vector<int64_t> Empty;
  auto It = History.find(I);
  return It == History.end() ? Empty : It->second;
}

namespace {

class Machine {
public:
  Machine(const ir::Function &F, const std::vector<int64_t> &Args,
          const ExecOptions &Opts)
      : F(F), Args(Args), Opts(Opts) {}

  ExecutionTrace run();

  std::map<const ir::Array *, std::map<std::vector<int64_t>, int64_t>> Memory;

private:
  /// A runtime value; Poison marks data from a never-assigned variable
  /// (unpruned SSA places phis whose first visit reads such a value).
  /// Poison flows through arithmetic but must not reach control flow,
  /// memory addressing, or the return value.
  struct Cell {
    int64_t V = 0;
    bool Poison = false;
  };

  bool value(const ir::Value *V, Cell &Out) {
    if (const auto *C = ir::dyn_cast<ir::Constant>(V)) {
      Out = {C->value(), false};
      return true;
    }
    if (const auto *A = ir::dyn_cast<ir::Argument>(V)) {
      assert(A->index() < Args.size() && "missing argument value");
      Out = {Args[A->index()], false};
      return true;
    }
    if (ir::isa<ir::UndefValue>(V)) {
      Out = {0, true};
      return true;
    }
    auto It = Env.find(V);
    if (It == Env.end()) {
      fail("read of value with no definition executed yet");
      return false;
    }
    Out = It->second;
    return true;
  }

  /// Reads a value that must be concrete (control flow, addresses, I/O).
  bool concrete(const ir::Value *V, int64_t &Out) {
    Cell C;
    if (!value(V, C))
      return false;
    if (C.Poison) {
      fail("use of uninitialized value");
      return false;
    }
    Out = C.V;
    return true;
  }

  void define(const ir::Instruction *I, Cell V) {
    Env[I] = V;
    if (Opts.TraceValues)
      Trace.History[I].push_back(V.V);
  }

  void fail(const std::string &Msg) {
    if (Trace.Error.empty())
      Trace.Error = Msg;
  }

  const ir::Function &F;
  const std::vector<int64_t> &Args;
  const ExecOptions &Opts;
  std::map<const ir::Value *, Cell> Env;
  ExecutionTrace Trace;
};

ExecutionTrace Machine::run() {
  const ir::BasicBlock *Block = F.entry();
  const ir::BasicBlock *PrevBlock = nullptr;

  while (Block) {
    if (Opts.TraceBlocks)
      Trace.Blocks.push_back(Block);
    // Phase 1: evaluate all phis against the incoming edge simultaneously,
    // so swap/rotation patterns (the paper's periodic variables) read the
    // previous iteration's values.
    std::vector<std::pair<const ir::Instruction *, Cell>> PhiValues;
    for (const ir::Instruction *Phi : Block->phis()) {
      assert(PrevBlock && "phi in entry block");
      Cell V;
      if (!value(Phi->incomingFor(PrevBlock), V))
        return std::move(Trace);
      PhiValues.push_back({Phi, V});
    }
    for (const auto &[Phi, V] : PhiValues) {
      define(Phi, V);
      if (++Trace.Steps >= Opts.MaxSteps) {
        Trace.HitStepLimit = true;
        return std::move(Trace);
      }
    }

    // Phase 2: straight-line execution.
    const ir::BasicBlock *Next = nullptr;
    for (const ir::Instruction *I : *Block) {
      if (I->isPhi())
        continue;
      if (++Trace.Steps >= Opts.MaxSteps) {
        Trace.HitStepLimit = true;
        return std::move(Trace);
      }
      switch (I->opcode()) {
      case ir::Opcode::Add:
      case ir::Opcode::Sub:
      case ir::Opcode::Mul:
      case ir::Opcode::Div:
      case ir::Opcode::Exp:
      case ir::Opcode::CmpEQ:
      case ir::Opcode::CmpNE:
      case ir::Opcode::CmpLT:
      case ir::Opcode::CmpLE:
      case ir::Opcode::CmpGT:
      case ir::Opcode::CmpGE: {
        Cell LC, RC;
        if (!value(I->operand(0), LC) || !value(I->operand(1), RC))
          return std::move(Trace);
        int64_t L = LC.V, R = RC.V;
        bool Poison = LC.Poison || RC.Poison;
        int64_t Out = 0;
        // Arithmetic is two's-complement: Add/Sub/Mul/Neg/Exp wrap on
        // overflow (computed in uint64 space, where wrapping is defined),
        // so the oracle's semantics are pinned rather than host UB.
        switch (I->opcode()) {
        case ir::Opcode::Add:
          Out = int64_t(uint64_t(L) + uint64_t(R));
          break;
        case ir::Opcode::Sub:
          Out = int64_t(uint64_t(L) - uint64_t(R));
          break;
        case ir::Opcode::Mul:
          Out = int64_t(uint64_t(L) * uint64_t(R));
          break;
        case ir::Opcode::Div:
          if (RC.Poison) {
            fail("division by uninitialized value");
            return std::move(Trace);
          }
          if (R == 0) {
            fail("division by zero");
            return std::move(Trace);
          }
          // The lone overflowing quotient, INT64_MIN / -1, wraps like the
          // other operations instead of trapping.
          Out = (L == INT64_MIN && R == -1) ? INT64_MIN : L / R;
          break;
        case ir::Opcode::Exp: {
          if (R < 0) {
            fail("negative exponent");
            return std::move(Trace);
          }
          uint64_t Acc = 1;
          for (int64_t K = 0; K < R; ++K)
            Acc *= uint64_t(L);
          Out = int64_t(Acc);
          break;
        }
        case ir::Opcode::CmpEQ:
          Out = L == R;
          break;
        case ir::Opcode::CmpNE:
          Out = L != R;
          break;
        case ir::Opcode::CmpLT:
          Out = L < R;
          break;
        case ir::Opcode::CmpLE:
          Out = L <= R;
          break;
        case ir::Opcode::CmpGT:
          Out = L > R;
          break;
        case ir::Opcode::CmpGE:
          Out = L >= R;
          break;
        default:
          break;
        }
        define(I, {Out, Poison});
        break;
      }
      case ir::Opcode::Neg: {
        Cell V;
        if (!value(I->operand(0), V))
          return std::move(Trace);
        define(I, {int64_t(0 - uint64_t(V.V)), V.Poison});
        break;
      }
      case ir::Opcode::Copy: {
        Cell V;
        if (!value(I->operand(0), V))
          return std::move(Trace);
        define(I, V);
        break;
      }
      case ir::Opcode::ArrayLoad: {
        std::vector<int64_t> Idx(I->numOperands());
        for (unsigned K = 0; K < I->numOperands(); ++K)
          if (!concrete(I->operand(K), Idx[K]))
            return std::move(Trace);
        auto &Cells = Memory[I->array()];
        auto It = Cells.find(Idx);
        define(I, {It == Cells.end() ? 0 : It->second, false});
        if (Opts.TraceArrays)
          Trace.Accesses.push_back(
              {I->array(), std::move(Idx), false, Trace.Steps});
        break;
      }
      case ir::Opcode::ArrayStore: {
        int64_t V;
        if (!concrete(I->operand(0), V))
          return std::move(Trace);
        std::vector<int64_t> Idx(I->numOperands() - 1);
        for (unsigned K = 1; K < I->numOperands(); ++K)
          if (!concrete(I->operand(K), Idx[K - 1]))
            return std::move(Trace);
        Memory[I->array()][Idx] = V;
        if (Opts.TraceArrays)
          Trace.Accesses.push_back(
              {I->array(), std::move(Idx), true, Trace.Steps});
        break;
      }
      case ir::Opcode::Br:
        Next = I->blocks()[0];
        break;
      case ir::Opcode::CondBr: {
        int64_t C;
        if (!concrete(I->operand(0), C))
          return std::move(Trace);
        Next = I->blocks()[C != 0 ? 0 : 1];
        break;
      }
      case ir::Opcode::Ret: {
        if (I->numOperands()) {
          int64_t V;
          if (!concrete(I->operand(0), V))
            return std::move(Trace);
          Trace.ReturnValue = V;
        }
        return std::move(Trace);
      }
      case ir::Opcode::LoadVar:
      case ir::Opcode::StoreVar:
        fail("interpreter requires SSA form (found scalar access)");
        return std::move(Trace);
      case ir::Opcode::Phi:
        break;
      }
      if (!Trace.Error.empty())
        return std::move(Trace);
    }
    PrevBlock = Block;
    Block = Next;
    if (!Block)
      fail("block fell through without terminator");
  }
  return std::move(Trace);
}

} // namespace

namespace {
const biv::stats::Timer InterpPhase("phase.interp");
const biv::stats::Counter NumRuns("interp.runs");
const biv::stats::Counter NumSteps("interp.steps");
} // namespace

ExecutionTrace biv::interp::run(const ir::Function &F,
                                const std::vector<int64_t> &Args,
                                const ExecOptions &Opts) {
  stats::ScopedSpan Span(InterpPhase);
  ExecutionTrace T = Machine(F, Args, Opts).run();
  NumRuns.bump();
  NumSteps.bump(T.Steps);
  return T;
}

ExecutionTrace biv::interp::runWithArrays(
    const ir::Function &F, const std::vector<int64_t> &Args,
    const std::map<std::string, std::map<std::vector<int64_t>, int64_t>>
        &Arrays,
    const ExecOptions &Opts) {
  Machine M(F, Args, Opts);
  for (const auto &[Name, Cells] : Arrays) {
    const ir::Array *A = F.findArray(Name);
    assert(A && "seeding unknown array");
    for (const auto &[Idx, V] : Cells)
      M.Memory[A][Idx] = V;
  }
  stats::ScopedSpan Span(InterpPhase);
  ExecutionTrace T = M.run();
  NumRuns.bump();
  NumSteps.bump(T.Steps);
  return T;
}
