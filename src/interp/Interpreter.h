//===- interp/Interpreter.h - Direct IR interpreter -------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct interpreter for SSA-form functions, with full value tracing.
///
/// This is the project's ground-truth oracle: property tests and the fuzzer
/// run a loop, read the observed per-iteration sequence of each SSA value
/// out of the trace, and require the classifier's closed forms /
/// monotonicity / periodicity claims to hold on the real execution.  The
/// array-access log doubles as a dynamic dependence oracle.
///
/// Because an oracle must have *specified* semantics, every edge case is
/// pinned (and tested in interp_test.cpp):
///  - Add/Sub/Mul/Neg/Exp wrap on overflow (two's complement), including
///    INT64_MIN / -1, which wraps to INT64_MIN;
///  - division by zero stops execution with an "division by zero" error
///    (the language has no modulo operator);
///  - exceeding MaxSteps sets HitStepLimit with an *empty* Error -- a
///    budget abort is distinguishable from a semantic fault;
///  - reads of never-assigned scalars are poison: they flow through
///    arithmetic but stop execution at control flow, addressing, or return.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_INTERP_INTERPRETER_H
#define BEYONDIV_INTERP_INTERPRETER_H

#include "ir/Function.h"
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace biv {
namespace interp {

/// Limits and switches for one execution.
struct ExecOptions {
  /// Abort after this many instructions (guards accidental infinite loops).
  uint64_t MaxSteps = 1000000;
  /// Record per-instruction value histories (the classification oracle).
  bool TraceValues = true;
  /// Record the array access log (the dependence oracle).
  bool TraceArrays = true;
  /// Record the basic-block visit sequence (the branch-cycle conjecture
  /// sampler reads per-iteration paths out of it).
  bool TraceBlocks = false;
};

/// One dynamic array access.
struct ArrayAccess {
  const ir::Array *A = nullptr;
  std::vector<int64_t> Indices;
  bool IsWrite = false;
  uint64_t Time = 0; ///< Global instruction counter at the access.
};

/// Everything observed while running a function.
struct ExecutionTrace {
  /// Values each instruction produced, in execution order.  A loop-header
  /// phi therefore has one entry per header visit: its value on iteration
  /// h = 0, 1, ... (the last visit is the one that exits).
  std::map<const ir::Instruction *, std::vector<int64_t>> History;

  /// Array access log in execution order.
  std::vector<ArrayAccess> Accesses;

  /// Basic-block visit sequence (only with TraceBlocks; entry block first).
  std::vector<const ir::BasicBlock *> Blocks;

  std::optional<int64_t> ReturnValue;
  uint64_t Steps = 0;
  bool HitStepLimit = false;
  /// Empty on success; otherwise why execution stopped (division by zero,
  /// negative exponent, read of undef...).
  std::string Error;

  bool ok() const { return Error.empty() && !HitStepLimit; }

  /// The observed sequence of \p I 's values; empty when never executed.
  const std::vector<int64_t> &sequenceOf(const ir::Instruction *I) const;
};

/// Runs SSA-form \p F with the given argument values.  Array cells default
/// to zero and live for the duration of the call.
ExecutionTrace run(const ir::Function &F, const std::vector<int64_t> &Args,
                   const ExecOptions &Opts = ExecOptions());

/// Convenience: pre-seeds array contents before running.  Keys are indices
/// (one vector per cell).
ExecutionTrace
runWithArrays(const ir::Function &F, const std::vector<int64_t> &Args,
              const std::map<std::string,
                             std::map<std::vector<int64_t>, int64_t>> &Arrays,
              const ExecOptions &Opts = ExecOptions());

} // namespace interp
} // namespace biv

#endif // BEYONDIV_INTERP_INTERPRETER_H
