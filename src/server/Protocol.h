//===- server/Protocol.h - Analysis-service wire protocol -------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol between `bivc --serve SOCKET` and its clients
/// (`bivc --connect`, tests, the serve benchmark).  One request and one
/// response per connection, both length-prefixed frames over a unix-domain
/// stream socket:
///
///   [u32 payload length][payload bytes]
///
/// Request payload:
///
///   [u32 magic "bivQ"][u32 ProtocolVersion][u32 kind]
///   [u64 option bits][u64 deadline ms][source text to end of frame]
///
/// Response payload:
///
///   [u32 magic "bivS"][u32 ProtocolVersion][u32 status]
///   [body text to end of frame]
///
/// The option bits are exactly the batch driver's digest bits (RunSCCP |
/// Materialize << 1 | Classify << 2 | AllValues << 3 | NestedTuples << 4 |
/// Summarize << 5),
/// so a served report is byte-identical to the one-shot CLI's and shares
/// cache entries with `--batch --cache` runs.  A deadline of 0 means no
/// deadline; otherwise a request still queued when the deadline expires is
/// answered `deadline_exceeded` without being analyzed.
///
/// All integers are host-endian: like the analysis cache file, the socket
/// is a local artifact (same machine, same build), not an interchange
/// format.  A version bump is a hard protocol break -- the server rejects
/// mismatched frames with `bad_request` rather than guessing.
///
/// DESIGN.md section 10 documents the protocol, including the current
/// version constant; tools/check_docs.sh cross-checks the two.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SERVER_PROTOCOL_H
#define BEYONDIV_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>

namespace biv {
namespace server {

/// Bump on any wire-visible change (frame layout, field meaning, status
/// values).  tools/check_docs.sh cross-checks this constant against the
/// value DESIGN.md documents.
inline constexpr uint32_t ProtocolVersion = 1;

inline constexpr uint32_t RequestMagic = 0x62697651u;  // "bivQ"
inline constexpr uint32_t ResponseMagic = 0x62697653u; // "bivS"

/// Frames larger than this are rejected before allocation: a daemon must
/// not be OOM-killable by one malformed length prefix.
inline constexpr uint32_t MaxFrameBytes = 16u << 20;

enum class RequestKind : uint32_t {
  Analyze = 0, ///< run the pipeline over the frame's source text
  Stats = 1,   ///< return the server's merged stats snapshot as JSON
};

enum class Status : uint32_t {
  Ok = 0,
  BadRequest = 1,       ///< malformed frame / wrong magic or version
  AnalysisError = 2,    ///< pipeline diagnostics or an internal error;
                        ///< body carries the messages
  Overloaded = 3,       ///< admission queue full; retry later
  DeadlineExceeded = 4, ///< deadline expired while queued
  ShuttingDown = 5,     ///< server draining; connection refused politely
};

const char *statusName(Status S);

struct Request {
  RequestKind Kind = RequestKind::Analyze;
  uint64_t OptsBits = 0;
  uint64_t DeadlineMs = 0; ///< 0 = no deadline
  std::string Source;

  std::string encode() const;
  /// Returns false on malformed bytes, with \p Error describing the field
  /// that failed (so the server can answer BadRequest with a reason).
  bool decode(const std::string &Payload, std::string &Error);
};

struct Response {
  Status S = Status::Ok;
  std::string Body;

  std::string encode() const;
  bool decode(const std::string &Payload, std::string &Error);
};

/// Blocking frame I/O on a connected socket \p Fd.  Both retry EINTR and
/// treat a cleanly closed peer mid-frame as an error.  readFrame rejects
/// frames over MaxFrameBytes before reading the payload.
bool readFrame(int Fd, std::string &Payload, std::string &Error);
bool writeFrame(int Fd, const std::string &Payload, std::string &Error);

} // namespace server
} // namespace biv

#endif // BEYONDIV_SERVER_PROTOCOL_H
