//===- server/Server.cpp - Persistent analysis daemon --------------------------===//

#include "server/Server.h"
#include "server/Fleet.h"
#include "ir/Printer.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace biv;
using namespace biv::server;

namespace {

// Request-lifecycle accounting.  Counters are thread-local frame cells like
// everywhere else; each server thread folds its deltas into the lifetime
// frame, so the Stats request kind and the daemon's own --stats see one
// merged view.
const stats::Counter NumAccepted("serve.accepted");
const stats::Counter NumCompleted("serve.completed");
const stats::Counter NumAnalysisErrors("serve.analysis_errors");
const stats::Counter NumBadRequests("serve.bad_requests");
const stats::Counter NumOverloaded("serve.overloaded");
const stats::Counter NumDeadlineExceeded("serve.deadline_exceeded");
const stats::Counter NumRefusedAtShutdown("serve.refused_at_shutdown");
const stats::Counter NumStatsRequests("serve.stats_requests");
const stats::Counter NumReplyFailures("serve.reply_failures");
const stats::Counter NumCacheHits("cache.hit");
const stats::Counter NumCacheMisses("cache.miss");
const stats::Counter NumCacheBytes("cache.bytes");
const stats::Timer CacheTimer("phase.cache");
const stats::Histogram LatencyHist("serve.latency_ns");
const stats::Histogram QueueDepthHist("serve.queue_depth");

/// The instance SIGTERM/SIGINT drain; handlers may only poke something
/// async-signal-safe, which requestShutdown() is (atomic store + pipe
/// write).
std::atomic<Server *> GSignalServer{nullptr};

extern "C" void bivServeTermHandler(int) {
  if (Server *S = GSignalServer.load())
    S->requestShutdown();
}

void closeFd(int &Fd) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

} // namespace

Server::Server(std::string Path, ServerOptions O)
    : SocketPath(std::move(Path)), Opts(std::move(O)) {}

Server::~Server() {
  std::string Err;
  (void)drain(Err);
  if (GSignalServer.load() == this)
    GSignalServer.store(nullptr);
}

bool Server::start(std::string &Error) {
  if (Started.load()) {
    Error = "server already started";
    return false;
  }
  // A client that disconnects mid-reply must surface as EPIPE on the
  // write, not SIGPIPE to the process: one vanished client must never
  // kill a daemon holding everyone else's connections.  (writeAll also
  // sends with MSG_NOSIGNAL; this covers any other stray write.)
  ::signal(SIGPIPE, SIG_IGN);

  if (!Opts.CachePath.empty()) {
    if (!Cache.open(Opts.CachePath, Error))
      return false;
    if (Cache.invalidated())
      std::fprintf(stderr,
                   "bivc: cache %s is stale or damaged; rebuilding it\n",
                   Opts.CachePath.c_str());
    Cache.setMaxBytes(Opts.CacheMaxBytes);
    HaveCache = true;
  }

  if (!Opts.AdoptedFds.empty()) {
    // Fleet worker: the parent bound everything; we only accept.
    ListenFds = Opts.AdoptedFds;
    OwnSocketFile = false;
  } else {
    if (SocketPath.empty() && Opts.TcpSpec.empty()) {
      Error = "server has no endpoint to listen on";
      return false;
    }
    if (!SocketPath.empty()) {
      int Fd = listenUnix(SocketPath, Error);
      if (Fd < 0)
        return false;
      ListenFds.push_back(Fd);
      OwnSocketFile = true;
    }
    if (!Opts.TcpSpec.empty()) {
      int Fd = listenTcp(Opts.TcpSpec, Error);
      if (Fd < 0) {
        for (int F : ListenFds)
          ::close(F);
        ListenFds.clear();
        return false;
      }
      ListenFds.push_back(Fd);
    }
  }
  for (int Fd : ListenFds) {
    // Non-blocking listen sockets: the accept loop multiplexes them with
    // the shutdown pipe via poll, and drains the backlog without blocking
    // when the drain begins.
    ::fcntl(Fd, F_SETFL, O_NONBLOCK);
    if (boundTcpPort(Fd) != 0)
      TcpListenPort = boundTcpPort(Fd);
  }

  if (::pipe(WakeFd) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    for (int &Fd : ListenFds)
      closeFd(Fd);
    ListenFds.clear();
    return false;
  }
  ::fcntl(WakeFd[1], F_SETFL, O_NONBLOCK); // signal handler must not block

  Pool = std::make_unique<driver::ThreadPool>(Opts.Threads);
  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestShutdown() {
  ShuttingDown.store(true);
  if (WakeFd[1] >= 0) {
    char C = 1;
    // The pipe being full means a wake-up is already pending; either way
    // the accept loop will see it.
    [[maybe_unused]] ssize_t N = ::write(WakeFd[1], &C, 1);
  }
}

void Server::installSignalHandlers() {
  GSignalServer.store(this);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = bivServeTermHandler;
  sigemptyset(&SA.sa_mask);
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
}

void Server::waitForShutdown() {
  // The accept loop only exits once ShuttingDown is observed, so joining
  // it is exactly "sleep until someone asks us to stop".
  if (AcceptThread.joinable())
    AcceptThread.join();
}

bool Server::drain(std::string &Error) {
  if (!Started.load() || Drained.exchange(true))
    return true;
  requestShutdown();
  if (AcceptThread.joinable())
    AcceptThread.join();
  // Every admitted request is still in the pool (or already answered);
  // wait() blocks until each one has written its response.  Tasks catch
  // their own exceptions, so nothing rethrows here.
  Pool->wait();
  for (int &Fd : ListenFds)
    closeFd(Fd);
  ListenFds.clear();
  // In fleet-worker mode the supervisor owns the socket file; removing it
  // here would cut off every sibling still accepting on it.
  if (OwnSocketFile && !SocketPath.empty())
    ::unlink(SocketPath.c_str());
  closeFd(WakeFd[0]);
  closeFd(WakeFd[1]);
  if (HaveCache && !Cache.save(Error))
    return false;
  return true;
}

void Server::mergeThreadDelta(stats::Frame &Base) {
  stats::Frame Now = stats::captureFrame();
  stats::Frame Delta = Now - Base;
  Base = Now;
  std::lock_guard<std::mutex> Lock(StatsM);
  Lifetime += Delta;
}

stats::StatsSnapshot Server::statsSnapshot() const {
  std::lock_guard<std::mutex> Lock(StatsM);
  return stats::snapshotFrame(Lifetime);
}

void Server::acceptLoop() {
  stats::Frame Base = stats::captureFrame();
  std::vector<pollfd> Fds;
  for (int Fd : ListenFds)
    Fds.push_back({Fd, POLLIN, 0});
  Fds.push_back({WakeFd[0], POLLIN, 0});
  const size_t Wake = Fds.size() - 1;
  bool Draining = false;
  while (!Draining) {
    for (pollfd &P : Fds)
      P.revents = 0;
    if (::poll(Fds.data(), nfds_t(Fds.size()), -1) < 0) {
      if (errno == EINTR)
        continue;
      break; // poll on our own fds cannot fail transiently otherwise
    }
    if (Fds[Wake].revents != 0 || ShuttingDown.load()) {
      Draining = true;
      break;
    }
    for (size_t I = 0; I < Wake && !Draining; ++I) {
      if (Fds[I].revents == 0)
        continue;
      for (;;) {
        int Fd = ::accept(Fds[I].fd, nullptr, nullptr);
        if (Fd < 0) {
          if (errno == EINTR)
            continue;
          break; // EAGAIN: backlog empty (or a fleet sibling won the
                 // race for it), back to poll
        }
        handleConnection(Fd, Base);
        mergeThreadDelta(Base);
        if (ShuttingDown.load()) {
          Draining = true;
          break;
        }
      }
    }
  }
  // Connections that reached the kernel backlog but were never taken must
  // not be silently dropped either: answer each with shutting_down.  (In
  // fleet mode the backlog is shared; whatever this worker wins here, it
  // answers.)
  for (size_t I = 0; I < Wake; ++I) {
    for (;;) {
      int Fd = ::accept(Fds[I].fd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      NumRefusedAtShutdown.bump();
      reply(Fd, Response{Status::ShuttingDown, "server is draining"});
      ::close(Fd);
    }
  }
  mergeThreadDelta(Base);
}

void Server::handleConnection(int Fd, stats::Frame &Base) {
  NumAccepted.bump();
  timeval TV{};
  TV.tv_sec = Opts.ReadTimeoutSec;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &TV, sizeof(TV));

  // Replies sent from this thread fold the stats delta first, mirroring
  // the workers: a client holding its answer must find its own request in
  // a follow-up stats query, whichever thread replied.
  std::string Payload, Err;
  if (!readFrame(Fd, Payload, Err)) {
    NumBadRequests.bump();
    mergeThreadDelta(Base);
    reply(Fd, Response{Status::BadRequest, Err});
    ::close(Fd);
    return;
  }
  Request Q;
  if (!Q.decode(Payload, Err)) {
    NumBadRequests.bump();
    mergeThreadDelta(Base);
    reply(Fd, Response{Status::BadRequest, Err});
    ::close(Fd);
    return;
  }

  if (Q.Kind == RequestKind::Stats) {
    // Served inline on the accept thread: always answerable, even when
    // every worker is busy -- that is exactly when you want stats.
    NumStatsRequests.bump();
    mergeThreadDelta(Base);
    stats::StatsSnapshot S = statsSnapshot();
    reply(Fd, Response{Status::Ok, S.renderJson()});
    ::close(Fd);
    return;
  }

  // Admission control.  The depth histogram sees every arrival (including
  // the rejected ones): the tail of this distribution is the backpressure
  // signal.
  size_t Depth = Admitted.load();
  QueueDepthHist.observe(Depth);
  if (Depth >= Opts.AdmitLimit) {
    NumOverloaded.bump();
    mergeThreadDelta(Base);
    reply(Fd, Response{Status::Overloaded,
                       "admission queue full (" +
                           std::to_string(Opts.AdmitLimit) + " in flight)"});
    ::close(Fd);
    return;
  }
  Admitted.fetch_add(1);
  std::chrono::steady_clock::time_point Accepted =
      std::chrono::steady_clock::now();
  auto Shared = std::make_shared<Request>(std::move(Q));
  Pool->submit([this, Fd, Shared, Accepted] {
    serveAnalyze(Fd, std::move(*Shared), Accepted);
  });
}

void Server::serveAnalyze(int Fd, Request Q,
                          std::chrono::steady_clock::time_point Accepted) {
  stats::Frame Base = stats::captureFrame();
  Response R;
  auto Elapsed = [&Accepted] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - Accepted)
        .count();
  };
  // Fault injection for the fleet soak: die the way a real worker bug
  // would -- request read, no reply written -- so the client sees a peer
  // close (not a hang) and the supervisor sees a death to respawn.
  if (!Opts.CrashToken.empty() &&
      Q.Source.find(Opts.CrashToken) != std::string::npos)
    ::_exit(86);
  if (Q.DeadlineMs != 0 &&
      uint64_t(Elapsed()) > Q.DeadlineMs * 1000000ull) {
    NumDeadlineExceeded.bump();
    R.S = Status::DeadlineExceeded;
    R.Body = "deadline of " + std::to_string(Q.DeadlineMs) +
             "ms expired while queued";
  } else {
    // A crashing request fails alone: any escaped exception becomes an
    // analysis_error response on this one connection, and the daemon (and
    // the pool: nothing propagates into wait()) keeps serving.
    try {
      if (Opts.TestHookBeforeAnalyze)
        Opts.TestHookBeforeAnalyze(Q);
      R = analyze(Q);
    } catch (const std::exception &E) {
      NumAnalysisErrors.bump();
      R.S = Status::AnalysisError;
      R.Body = std::string("internal error: ") + E.what();
    } catch (...) {
      NumAnalysisErrors.bump();
      R.S = Status::AnalysisError;
      R.Body = "internal error (non-standard exception)";
    }
  }
  if (R.S == Status::Ok)
    NumCompleted.bump();
  LatencyHist.observe(uint64_t(Elapsed()));
  // Fold this request's stats before replying, so a client that got its
  // answer and then asks for stats is guaranteed to see its own request.
  mergeThreadDelta(Base);
  reply(Fd, R);
  ::close(Fd);
  // The reply itself can fail (client died: EPIPE/ECONNRESET).  That
  // counter bumps after the fold above; fold again or the next request's
  // fresh capture would re-baseline it away and it could never be seen.
  mergeThreadDelta(Base);
  Admitted.fetch_sub(1);
}

Response Server::analyze(const Request &Q) {
  // Option bits are the batch driver's digest bits; mirroring its unit
  // path exactly (parse, probe, analyze, report) is what makes a served
  // response byte-identical to the one-shot CLI and lets the daemon share
  // cache files with --batch --cache runs.
  const bool RunSCCP = (Q.OptsBits & 1) != 0;
  const bool Materialize = (Q.OptsBits & 2) != 0;
  const bool Classify = (Q.OptsBits & 4) != 0;
  const bool AllValues = (Q.OptsBits & 8) != 0;
  const bool NestedTuples = (Q.OptsBits & 16) != 0;
  const bool Summarize = (Q.OptsBits & 32) != 0;

  ivclass::PipelineOptions PO;
  PO.RunSCCP = RunSCCP;
  PO.VerifyEach = false;
  PO.Analysis.MaterializeExitValues = Materialize;
  PO.Analysis.Summarize = Summarize;
  ivclass::ReportOptions RO;
  RO.AllValues = AllValues;
  RO.NestedTuples = NestedTuples;

  std::vector<std::string> Errors;
  std::optional<ivclass::AnalyzedProgram> P =
      ivclass::parseSource(Q.Source, Errors);
  if (!P) {
    NumAnalysisErrors.bump();
    Response R;
    R.S = Status::AnalysisError;
    for (const std::string &E : Errors) {
      R.Body += E;
      R.Body += '\n';
    }
    return R;
  }

  uint64_t Digest = 0;
  if (HaveCache) {
    const cache::CacheEntry *CE = nullptr;
    {
      stats::ScopedSpan Span(CacheTimer);
      Digest = cache::unitDigest(ir::toString(*P->F), Q.OptsBits);
      CE = Cache.lookup(Digest);
      if (!CE && Cache.refreshIfChanged())
        // A fleet sibling may have flushed this digest since our view
        // was mapped; one cheap stat per miss buys cross-worker warmth.
        CE = Cache.lookup(Digest);
    }
    if (CE) {
      NumCacheHits.bump();
      NumCacheBytes.bump(CE->ReportText.size());
      // Same replay rule as the batch driver: stored analysis counters fire
      // again so merged counters stay corpus-shaped, while phase timers do
      // not (spans must prove the classification was actually skipped).
      for (const auto &[Name, V] : CE->Counters)
        stats::bumpNamedCounter(Name, V);
      return Response{Status::Ok, CE->ReportText};
    }
    NumCacheMisses.bump();
  }

  stats::Frame PostParse = stats::captureFrame();
  ivclass::analyzeParsed(*P, PO);
  Response R;
  R.S = Status::Ok;
  ivclass::KindCounts Kinds = ivclass::countHeaderPhiKinds(*P->IA);
  if (Classify)
    R.Body = ivclass::report(*P->IA, &P->Info, RO);
  if (HaveCache) {
    cache::CacheEntry E;
    E.ReportText = R.Body;
    E.Stats = P->IA->stats();
    E.Kinds = Kinds;
    E.Instructions = P->F->instructionCount();
    E.Loops = P->LI->loops().size();
    E.Counters =
        stats::snapshotFrame(stats::captureFrame() - PostParse).Counters;
    // Completion-order insertion: entries are content-addressed, so
    // concurrent misses for the same digest keep the first copy and the
    // bytes of any one entry are deterministic even though the file-level
    // order is not (unlike --batch, which commits in input order).
    Cache.insert(Digest, std::move(E));
    // Flush cadence: land accumulated misses on disk so fleet siblings
    // can warm from them and a crash loses bounded work.  try_lock keeps
    // workers from convoying behind one flush; whoever loses just keeps
    // serving and the cadence catches up.
    if (Cache.pendingCount() >= Opts.CacheFlushEvery) {
      std::unique_lock<std::mutex> FL(FlushM, std::try_to_lock);
      if (FL.owns_lock()) {
        std::string Err;
        if (!Cache.save(Err))
          std::fprintf(stderr, "bivc: cache flush failed: %s\n",
                       Err.c_str());
      }
    }
  }
  return R;
}

void Server::reply(int Fd, const Response &R) {
  std::string Err;
  if (!writeFrame(Fd, R.encode(), Err)) {
    // The client vanished; its request was not dropped by *us*, but the
    // failure must still be visible somewhere.
    NumReplyFailures.bump();
  }
}
