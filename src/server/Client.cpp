//===- server/Client.cpp - Blocking analysis-service client --------------------===//

#include "server/Client.h"
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace biv;
using namespace biv::server;

namespace {

int connectUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    Error = "cannot connect to '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectTcp(const std::string &Spec, std::string &Error) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Spec.size()) {
    Error = "bad TCP endpoint 'tcp:" + Spec + "' (expected tcp:HOST:PORT)";
    return -1;
  }
  std::string Host = Spec.substr(0, Colon);
  std::string Port = Spec.substr(Colon + 1);

  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  addrinfo *Res = nullptr;
  int GE = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (GE != 0) {
    Error = "cannot resolve '" + Spec + "': " + ::gai_strerror(GE);
    return -1;
  }
  int Fd = -1;
  std::string LastErr = "no usable address";
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype | SOCK_CLOEXEC,
                  AI->ai_protocol);
    if (Fd < 0) {
      LastErr = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int Rc;
    do {
      Rc = ::connect(Fd, AI->ai_addr, AI->ai_addrlen);
    } while (Rc != 0 && errno == EINTR);
    if (Rc == 0)
      break;
    LastErr = std::strerror(errno);
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0)
    Error = "cannot connect to '" + Spec + "': " + LastErr;
  return Fd;
}

} // namespace

bool biv::server::call(const std::string &Endpoint, const Request &Q,
                       Response &R, std::string &Error) {
  // "tcp:HOST:PORT" targets the TCP frontend; anything else is a unix
  // socket path (paths with colons are fine -- none start with "tcp:").
  int Fd = Endpoint.rfind("tcp:", 0) == 0
               ? connectTcp(Endpoint.substr(4), Error)
               : connectUnix(Endpoint, Error);
  if (Fd < 0)
    return false;
  std::string Payload;
  if (!writeFrame(Fd, Q.encode(), Error) ||
      !readFrame(Fd, Payload, Error)) {
    ::close(Fd);
    return false;
  }
  ::close(Fd);
  return R.decode(Payload, Error);
}
