//===- server/Client.cpp - Blocking analysis-service client --------------------===//

#include "server/Client.h"
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace biv;
using namespace biv::server;

bool biv::server::call(const std::string &SocketPath, const Request &Q,
                       Response &R, std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + SocketPath;
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0) {
    Error = "cannot connect to '" + SocketPath +
            "': " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  std::string Payload;
  if (!writeFrame(Fd, Q.encode(), Error) ||
      !readFrame(Fd, Payload, Error)) {
    ::close(Fd);
    return false;
  }
  ::close(Fd);
  return R.decode(Payload, Error);
}
