//===- server/Client.h - Blocking analysis-service client -------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call blocking client for the analysis daemon: connect, send one
/// request frame, read one response frame.  `bivc --connect` is a thin
/// wrapper over this, and the server tests and soak clients use it
/// directly.  Endpoints are unix socket paths by default; the prefix
/// `tcp:HOST:PORT` targets a `--serve-tcp` frontend instead.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SERVER_CLIENT_H
#define BEYONDIV_SERVER_CLIENT_H

#include "server/Protocol.h"
#include <string>

namespace biv {
namespace server {

/// Sends \p Q to the daemon at \p Endpoint (a unix socket path, or
/// `tcp:HOST:PORT`) and fills \p R with its response.  Returns false with
/// \p Error set on transport problems (no daemon, daemon died mid-request,
/// malformed response frame); protocol-level failures (overloaded,
/// deadline exceeded, analysis errors) return true with the status in
/// \p R.
bool call(const std::string &Endpoint, const Request &Q, Response &R,
          std::string &Error);

} // namespace server
} // namespace biv

#endif // BEYONDIV_SERVER_CLIENT_H
