//===- server/Fleet.h - Pre-forked multi-worker serving ---------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet mode for `bivc --serve`: a listener process binds the socket(s),
/// pre-forks N workers that inherit the listening fds and accept() in the
/// worker (the kernel load-balances the backlog across them), and then
/// supervises -- a worker that dies is respawned with exponential backoff,
/// SIGTERM drains the whole fleet, and the exit status aggregates the
/// workers'.  DESIGN.md section 13 has the architecture.
///
/// Division of labor (the Cyclebite pipeline-of-tools shape: a thin
/// coordinator over single-purpose workers):
///
///  - The *listener/supervisor* owns the socket file and the bound fds.
///    It never accepts, parses, or analyzes -- after the fork loop it only
///    waits on signals, so a worker crash can never take it down.
///  - Each *worker* is a full single-process Server (admission control,
///    deadline checks, stats, cache) whose only difference is that it
///    adopts inherited fds instead of binding its own.  Worker processes
///    share the analysis cache file through the cross-process protocol in
///    cache/AnalysisCache.h (flock'd appends, generation counter, mmap
///    snapshots), so a function analyzed by one worker warms all of them
///    at the next flush/refresh.
///
/// Forking happens strictly before any worker thread exists: runFleet()
/// forks first and each child constructs its Server (and thread pool)
/// afterwards, so no lock or condition variable is ever duplicated in a
/// locked state.
///
/// Caveat an operator must know: per-request *stats* stay per-worker.  A
/// Stats request is answered by whichever worker accepted it; fleet-wide
/// aggregation is the monitoring system's job (scrape each worker, or use
/// `bench_serve --fleet` which aggregates client-side).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SERVER_FLEET_H
#define BEYONDIV_SERVER_FLEET_H

#include "server/Server.h"
#include <string>

namespace biv {
namespace server {

/// Default `--workers`: one process, i.e. exactly the PR 5 daemon.  The
/// fleet machinery only engages when asked.  tools/check_docs.sh
/// cross-checks this constant against the README.
inline constexpr unsigned DefaultWorkers = 1;
/// Upper bound on `--workers`: past this, fork storms and cache-lock
/// convoys cost more than they buy on any plausible host.
inline constexpr unsigned MaxWorkers = 64;
/// Default `--cache-max-bytes`: 0 = unbounded (the pre-fleet behavior;
/// opting into compaction is an operator decision).  Cross-checked by
/// tools/check_docs.sh against the README.
inline constexpr uint64_t DefaultCacheMaxBytes = 0;

struct FleetOptions {
  /// Unix socket path; empty = TCP only (TcpSpec must then be set).
  std::string SocketPath;
  /// Optional TCP frontend, "HOST:PORT" (port 0 picks a free port).
  std::string TcpSpec;
  unsigned Workers = DefaultWorkers;
  /// Per-worker server options (cache path, admit limit, threads...).
  /// AdoptedFds is overwritten per worker.
  ServerOptions Worker;
};

/// Binds + listens on an AF_UNIX socket at \p Path (a stale socket file is
/// replaced).  Returns the fd, or -1 with \p Error set.
int listenUnix(const std::string &Path, std::string &Error);

/// Binds + listens on a TCP socket for \p Spec ("HOST:PORT"; port 0 lets
/// the kernel pick).  Returns the fd, or -1 with \p Error set.
int listenTcp(const std::string &Spec, std::string &Error);

/// The local port of a bound TCP socket (tests bind port 0 and need the
/// real one).  0 on failure.
int boundTcpPort(int Fd);

/// Binds the sockets, pre-forks FO.Workers worker processes, and
/// supervises until SIGTERM/SIGINT: dead workers respawn with exponential
/// backoff (100ms doubling to 5s; the clock resets once a worker survives
/// its first 10s), a drain signal is forwarded to every worker and waited
/// out, and the socket file is removed last.  Returns the process exit
/// code: 0 when every worker drained cleanly, 1 otherwise.  Must be called
/// before any threads exist in this process.
int runFleet(const FleetOptions &FO);

} // namespace server
} // namespace biv

#endif // BEYONDIV_SERVER_FLEET_H
