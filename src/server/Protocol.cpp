//===- server/Protocol.cpp - Analysis-service wire protocol --------------------===//

#include "server/Protocol.h"
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace biv;
using namespace biv::server;

const char *biv::server::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::BadRequest:
    return "bad_request";
  case Status::AnalysisError:
    return "analysis_error";
  case Status::Overloaded:
    return "overloaded";
  case Status::DeadlineExceeded:
    return "deadline_exceeded";
  case Status::ShuttingDown:
    return "shutting_down";
  }
  return "<bad status>";
}

namespace {

void putU32(std::string &Out, uint32_t V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

void putU64(std::string &Out, uint64_t V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

bool getU32(const std::string &In, size_t &Pos, uint32_t &V) {
  if (Pos + sizeof(V) > In.size())
    return false;
  std::memcpy(&V, In.data() + Pos, sizeof(V));
  Pos += sizeof(V);
  return true;
}

bool getU64(const std::string &In, size_t &Pos, uint64_t &V) {
  if (Pos + sizeof(V) > In.size())
    return false;
  std::memcpy(&V, In.data() + Pos, sizeof(V));
  Pos += sizeof(V);
  return true;
}

/// Reads exactly \p Len bytes; false on error or early EOF.
bool readAll(int Fd, char *Buf, size_t Len, std::string &Error) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::read(Fd, Buf + Done, Len - Done);
    if (N > 0) {
      Done += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Error = N == 0 ? "peer closed the connection mid-frame"
                   : std::string("read failed: ") + std::strerror(errno);
    return false;
  }
  return true;
}

/// How long writeAll will wait for a stalled peer to drain the socket
/// buffer before giving up.  Generous: a reply-path stall this long means
/// the client is gone or wedged, and the server must get its thread back.
constexpr int WriteStallTimeoutMs = 30000;

bool writeAll(int Fd, const char *Buf, size_t Len, std::string &Error) {
  size_t Done = 0;
  while (Done < Len) {
    // MSG_NOSIGNAL: a peer that disconnected mid-reply must surface as
    // EPIPE on this call, not SIGPIPE to the whole process.  Plain files
    // and pipes (ENOTSOCK) fall back to write(); the server additionally
    // ignores SIGPIPE so the fallback path cannot kill it either.
    ssize_t N = ::send(Fd, Buf + Done, Len - Done, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Buf + Done, Len - Done);
    if (N > 0) {
      Done += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // A frame larger than the socket buffer to a slow reader: the fd may
      // be non-blocking (or carry a send timeout), so a partial frame is
      // not a hard error yet.  Wait for drain, bounded, then resume --
      // writeFrame must complete the frame or fail, never short-write.
      struct pollfd P = {Fd, POLLOUT, 0};
      int R = ::poll(&P, 1, WriteStallTimeoutMs);
      if (R > 0)
        continue;
      if (R < 0 && errno == EINTR)
        continue;
      Error = "write stalled: peer not draining";
      return false;
    }
    Error = std::string("write failed: ") + std::strerror(errno);
    return false;
  }
  return true;
}

} // namespace

std::string Request::encode() const {
  std::string Out;
  putU32(Out, RequestMagic);
  putU32(Out, ProtocolVersion);
  putU32(Out, uint32_t(Kind));
  putU64(Out, OptsBits);
  putU64(Out, DeadlineMs);
  Out += Source;
  return Out;
}

bool Request::decode(const std::string &Payload, std::string &Error) {
  size_t Pos = 0;
  uint32_t Magic = 0, Version = 0, K = 0;
  if (!getU32(Payload, Pos, Magic) || Magic != RequestMagic) {
    Error = "bad request magic";
    return false;
  }
  if (!getU32(Payload, Pos, Version) || Version != ProtocolVersion) {
    Error = "protocol version mismatch (server speaks " +
            std::to_string(ProtocolVersion) + ")";
    return false;
  }
  if (!getU32(Payload, Pos, K) || K > uint32_t(RequestKind::Stats)) {
    Error = "bad request kind";
    return false;
  }
  Kind = RequestKind(K);
  if (!getU64(Payload, Pos, OptsBits) || !getU64(Payload, Pos, DeadlineMs)) {
    Error = "truncated request header";
    return false;
  }
  Source.assign(Payload, Pos, Payload.size() - Pos);
  return true;
}

std::string Response::encode() const {
  std::string Out;
  putU32(Out, ResponseMagic);
  putU32(Out, ProtocolVersion);
  putU32(Out, uint32_t(S));
  Out += Body;
  return Out;
}

bool Response::decode(const std::string &Payload, std::string &Error) {
  size_t Pos = 0;
  uint32_t Magic = 0, Version = 0, St = 0;
  if (!getU32(Payload, Pos, Magic) || Magic != ResponseMagic) {
    Error = "bad response magic";
    return false;
  }
  if (!getU32(Payload, Pos, Version) || Version != ProtocolVersion) {
    Error = "response protocol version mismatch";
    return false;
  }
  if (!getU32(Payload, Pos, St) || St > uint32_t(Status::ShuttingDown)) {
    Error = "bad response status";
    return false;
  }
  S = Status(St);
  Body.assign(Payload, Pos, Payload.size() - Pos);
  return true;
}

bool biv::server::readFrame(int Fd, std::string &Payload,
                            std::string &Error) {
  uint32_t Len = 0;
  if (!readAll(Fd, reinterpret_cast<char *>(&Len), sizeof(Len), Error))
    return false;
  if (Len > MaxFrameBytes) {
    Error = "frame length " + std::to_string(Len) + " exceeds the " +
            std::to_string(MaxFrameBytes) + "-byte limit";
    return false;
  }
  Payload.resize(Len);
  return Len == 0 || readAll(Fd, Payload.data(), Len, Error);
}

bool biv::server::writeFrame(int Fd, const std::string &Payload,
                             std::string &Error) {
  if (Payload.size() > MaxFrameBytes) {
    Error = "frame too large to send";
    return false;
  }
  uint32_t Len = uint32_t(Payload.size());
  if (!writeAll(Fd, reinterpret_cast<const char *>(&Len), sizeof(Len),
                Error))
    return false;
  return writeAll(Fd, Payload.data(), Payload.size(), Error);
}
