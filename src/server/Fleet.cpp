//===- server/Fleet.cpp - Pre-forked multi-worker serving ----------------------===//

#include "server/Fleet.h"
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#include <vector>

using namespace biv;
using namespace biv::server;

//===----------------------------------------------------------------------===//
// Listening sockets (shared by single-process --serve and the fleet parent)
//===----------------------------------------------------------------------===//

int biv::server::listenUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  // No CLOEXEC: fleet workers inherit this fd across fork (there is no
  // exec anywhere in the lifecycle, so nothing can leak further).
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // A stale socket file from a dead daemon would make bind fail forever;
  // replace it.  (Two live daemons on one path is an operator error this
  // cannot detect -- the second steals the path, as with pid files.)
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 128) != 0) {
    Error = "cannot listen on '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int biv::server::listenTcp(const std::string &Spec, std::string &Error) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 == Spec.size()) {
    Error = "bad TCP endpoint '" + Spec + "' (expected HOST:PORT)";
    return -1;
  }
  std::string Host = Spec.substr(0, Colon);
  std::string Port = Spec.substr(Colon + 1);

  addrinfo Hints{};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  addrinfo *Res = nullptr;
  int GE = ::getaddrinfo(Host.c_str(), Port.c_str(), &Hints, &Res);
  if (GE != 0) {
    Error = "cannot resolve '" + Spec + "': " + ::gai_strerror(GE);
    return -1;
  }
  int Fd = -1;
  std::string LastErr = "no usable address";
  for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0) {
      LastErr = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, AI->ai_addr, AI->ai_addrlen) == 0 &&
        ::listen(Fd, 128) == 0)
      break;
    LastErr = std::strerror(errno);
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  if (Fd < 0)
    Error = "cannot listen on '" + Spec + "': " + LastErr;
  return Fd;
}

int biv::server::boundTcpPort(int Fd) {
  sockaddr_storage SS{};
  socklen_t Len = sizeof(SS);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &Len) != 0)
    return 0;
  if (SS.ss_family == AF_INET)
    return ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
  if (SS.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
  return 0;
}

//===----------------------------------------------------------------------===//
// Supervisor
//===----------------------------------------------------------------------===//

namespace {

/// Self-pipe the signal handlers poke; the supervisor polls it.  One
/// supervisor per process, so globals are fine (and required: handlers).
int GSupWake[2] = {-1, -1};
std::atomic<bool> GSupTerm{false};

extern "C" void fleetTermHandler(int) {
  GSupTerm.store(true);
  char C = 1;
  [[maybe_unused]] ssize_t N = ::write(GSupWake[1], &C, 1);
}

extern "C" void fleetChldHandler(int) {
  // Reaping happens in the loop; this only wakes the poll.
  char C = 2;
  [[maybe_unused]] ssize_t N = ::write(GSupWake[1], &C, 1);
}

uint64_t monotonicMs() {
  timespec TS;
  ::clock_gettime(CLOCK_MONOTONIC, &TS);
  return uint64_t(TS.tv_sec) * 1000 + uint64_t(TS.tv_nsec) / 1000000;
}

/// One worker process slot and its respawn backoff state.
struct WorkerSlot {
  pid_t Pid = -1;
  uint64_t SpawnedAtMs = 0;
  uint64_t BackoffMs = 0;     // 0 = spawn immediately
  uint64_t NextSpawnAtMs = 0; // only meaningful while Pid < 0
  bool EverFailed = false;
};

constexpr uint64_t BackoffInitialMs = 100;
constexpr uint64_t BackoffCapMs = 5000;
/// A worker that survives this long has its backoff forgiven: the next
/// crash starts the ladder over instead of inheriting a 5s penalty from
/// ancient history.
constexpr uint64_t BackoffForgiveMs = 10000;

/// The worker body: runs after fork, never returns.  Constructs a full
/// Server over the inherited fds -- all threads in this process are born
/// here, after the fork.
[[noreturn]] void runWorker(const FleetOptions &FO,
                            const std::vector<int> &Fds) {
  // The supervisor's handlers are not ours; the Server installs its own
  // SIGTERM/SIGINT drain hooks.
  ::signal(SIGCHLD, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  ServerOptions SO = FO.Worker;
  SO.AdoptedFds = Fds;
  Server S(FO.SocketPath, std::move(SO));
  std::string Error;
  if (!S.start(Error)) {
    std::fprintf(stderr, "bivc[worker %d]: %s\n", int(::getpid()),
                 Error.c_str());
    ::_exit(1);
  }
  S.installSignalHandlers();
  S.waitForShutdown();
  bool Ok = S.drain(Error);
  if (!Ok)
    std::fprintf(stderr, "bivc[worker %d]: %s\n", int(::getpid()),
                 Error.c_str());
  ::_exit(Ok ? 0 : 1);
}

bool spawn(WorkerSlot &Slot, const FleetOptions &FO,
           const std::vector<int> &Fds) {
  pid_t Pid = ::fork();
  if (Pid < 0)
    return false;
  if (Pid == 0)
    runWorker(FO, Fds); // noreturn
  Slot.Pid = Pid;
  Slot.SpawnedAtMs = monotonicMs();
  return true;
}

} // namespace

int biv::server::runFleet(const FleetOptions &FO) {
  std::vector<int> Fds;
  std::string Error;
  if (!FO.SocketPath.empty()) {
    int Fd = listenUnix(FO.SocketPath, Error);
    if (Fd < 0) {
      std::fprintf(stderr, "bivc: %s\n", Error.c_str());
      return 1;
    }
    Fds.push_back(Fd);
  }
  if (!FO.TcpSpec.empty()) {
    int Fd = listenTcp(FO.TcpSpec, Error);
    if (Fd < 0) {
      std::fprintf(stderr, "bivc: %s\n", Error.c_str());
      for (int F : Fds)
        ::close(F);
      return 1;
    }
    // Port 0 means "any": report the real one so clients can find us.
    std::fprintf(stderr, "bivc: fleet listening on tcp port %d\n",
                 boundTcpPort(Fd));
    Fds.push_back(Fd);
  }
  if (Fds.empty()) {
    std::fprintf(stderr, "bivc: fleet has no endpoint to listen on\n");
    return 1;
  }

  if (::pipe(GSupWake) != 0) {
    std::fprintf(stderr, "bivc: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  ::fcntl(GSupWake[0], F_SETFL, O_NONBLOCK);
  ::fcntl(GSupWake[1], F_SETFL, O_NONBLOCK);
  GSupTerm.store(false);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  sigemptyset(&SA.sa_mask);
  SA.sa_handler = fleetTermHandler;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  SA.sa_handler = fleetChldHandler;
  SA.sa_flags = SA_NOCLDSTOP;
  ::sigaction(SIGCHLD, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::vector<WorkerSlot> Slots(FO.Workers);
  for (WorkerSlot &Slot : Slots)
    if (!spawn(Slot, FO, Fds))
      std::fprintf(stderr, "bivc: fork: %s\n", std::strerror(errno));

  bool AnyFailure = false;
  while (!GSupTerm.load()) {
    // Respawn due slots and work out how long the poll may sleep.
    uint64_t Now = monotonicMs();
    int TimeoutMs = -1;
    for (WorkerSlot &Slot : Slots) {
      if (Slot.Pid >= 0)
        continue;
      if (Now >= Slot.NextSpawnAtMs) {
        if (!spawn(Slot, FO, Fds)) {
          // fork failed (EAGAIN storm?): retry on the backoff ladder.
          Slot.BackoffMs = Slot.BackoffMs
                               ? std::min(Slot.BackoffMs * 2, BackoffCapMs)
                               : BackoffInitialMs;
          Slot.NextSpawnAtMs = Now + Slot.BackoffMs;
        }
      }
      if (Slot.Pid < 0) {
        int Wait = int(Slot.NextSpawnAtMs - Now);
        TimeoutMs = TimeoutMs < 0 ? Wait : std::min(TimeoutMs, Wait);
      }
    }

    pollfd P = {GSupWake[0], POLLIN, 0};
    int R = ::poll(&P, 1, TimeoutMs);
    if (R > 0) {
      char Buf[64];
      while (::read(GSupWake[0], Buf, sizeof(Buf)) > 0)
        ; // drain every pending wake (the read end is non-blocking)
    }

    // Reap everything that exited and schedule respawns.
    for (;;) {
      int St = 0;
      pid_t Pid = ::waitpid(-1, &St, WNOHANG);
      if (Pid <= 0)
        break;
      for (WorkerSlot &Slot : Slots) {
        if (Slot.Pid != Pid)
          continue;
        Slot.Pid = -1;
        uint64_t LivedMs = monotonicMs() - Slot.SpawnedAtMs;
        bool Clean = WIFEXITED(St) && WEXITSTATUS(St) == 0;
        if (!Clean)
          Slot.EverFailed = true;
        if (LivedMs >= BackoffForgiveMs)
          Slot.BackoffMs = 0;
        Slot.BackoffMs = Slot.BackoffMs
                             ? std::min(Slot.BackoffMs * 2, BackoffCapMs)
                             : BackoffInitialMs;
        Slot.NextSpawnAtMs = monotonicMs() + Slot.BackoffMs;
        std::fprintf(stderr,
                     "bivc: worker %d %s (lived %llums); respawning in "
                     "%llums\n",
                     int(Pid),
                     Clean ? "exited"
                     : WIFSIGNALED(St)
                         ? "died on a signal"
                         : "exited with an error",
                     (unsigned long long)LivedMs,
                     (unsigned long long)Slot.BackoffMs);
        break;
      }
    }
  }

  // Drain: forward the signal, then wait out every live worker.
  for (WorkerSlot &Slot : Slots)
    if (Slot.Pid >= 0)
      ::kill(Slot.Pid, SIGTERM);
  for (WorkerSlot &Slot : Slots) {
    if (Slot.Pid < 0)
      continue;
    int St = 0;
    while (::waitpid(Slot.Pid, &St, 0) < 0 && errno == EINTR)
      ;
    if (!(WIFEXITED(St) && WEXITSTATUS(St) == 0))
      Slot.EverFailed = true;
    Slot.Pid = -1;
  }
  for (const WorkerSlot &Slot : Slots)
    AnyFailure = AnyFailure || Slot.EverFailed;

  for (int F : Fds)
    ::close(F);
  if (!FO.SocketPath.empty())
    ::unlink(FO.SocketPath.c_str());
  ::close(GSupWake[0]);
  ::close(GSupWake[1]);
  GSupWake[0] = GSupWake[1] = -1;
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGCHLD, SIG_DFL);
  return AnyFailure ? 1 : 0;
}
