//===- server/Server.h - Persistent analysis daemon -------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-as-a-service daemon behind `bivc --serve SOCKET`: a
/// unix-domain socket front end that amortizes process startup over many
/// requests, shares one warm AnalysisCache across all of them, and
/// schedules the actual pipeline work onto the existing driver::ThreadPool.
///
/// Lifecycle invariants (the point of the exercise -- this is the same
/// shape as an inference front end):
///
///  - No accepted request is ever silently dropped.  Every connection the
///    accept loop takes gets exactly one response frame: a report, an
///    analysis error, `overloaded`, `deadline_exceeded`, or (for
///    connections still in the kernel backlog when shutdown starts)
///    `shutting_down`.
///  - Admission is bounded.  At most AdmitLimit analyze requests may be
///    queued-or-running; the next one is answered `overloaded` immediately
///    instead of growing an unbounded buffer.
///  - Deadlines are enforced at dispatch.  A request whose deadline expired
///    while it sat in the queue is answered `deadline_exceeded` without
///    paying for the analysis.
///  - A crashing request fails alone.  Worker-side exceptions become an
///    `analysis_error` response on that one connection; the daemon and its
///    siblings keep serving.
///  - SIGTERM drains.  The accept loop stops taking connections, every
///    already-admitted request runs to completion and is answered, the
///    shared cache is saved, and only then does the process exit.
///
/// Observability: the server merges every request's stats-frame delta into
/// one server-lifetime frame (per-request latency and queue-depth-at-
/// admission histograms included, via the support/Stats histogram cells),
/// so `--stats`/`--stats-json` on the daemon and the Stats request kind
/// both see cache traffic and tail latency.  DESIGN.md section 10 has the
/// full protocol and semantics.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_SERVER_SERVER_H
#define BEYONDIV_SERVER_SERVER_H

#include "cache/AnalysisCache.h"
#include "driver/ThreadPool.h"
#include "server/Protocol.h"
#include "support/Stats.h"
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace biv {
namespace server {

struct ServerOptions {
  /// Worker threads for the analysis pool; 0 = hardware concurrency.
  unsigned Threads = 0;
  /// Max analyze requests admitted (queued + running) at once; the next
  /// one is answered Overloaded.
  size_t AdmitLimit = 64;
  /// Persistent shared cache path; empty = serve without one.  Opened at
  /// start() (unwritable/unreadable is a hard start error, matching
  /// `--cache`) and saved during drain.
  std::string CachePath;
  /// Byte cap for the cache file (`--cache-max-bytes`); a save that would
  /// exceed it compacts, evicting least-recently-used entries.  0 =
  /// unbounded.
  uint64_t CacheMaxBytes = 0;
  /// Flush cadence: once this many misses are pending in memory, the next
  /// one saves the cache mid-flight (so fleet siblings can warm from it
  /// and a crash loses at most this much work), in addition to the final
  /// save at drain.
  size_t CacheFlushEvery = 64;
  /// Optional TCP frontend, "HOST:PORT" (`--serve-tcp`; port 0 lets the
  /// kernel pick -- see tcpPort()).  Served alongside the unix socket,
  /// same protocol, same lifecycle.
  std::string TcpSpec;
  /// Fleet mode: already-bound listening sockets inherited from the
  /// parent.  When non-empty, start() adopts these instead of binding
  /// (SocketPath/TcpSpec are the parent's business), and drain() leaves
  /// the socket file alone -- the supervisor owns it.
  std::vector<int> AdoptedFds;
  /// Seconds a connection may dawdle delivering its request frame before
  /// the read times out (guards the accept loop against stalled clients).
  unsigned ReadTimeoutSec = 10;
  /// Test-only: requests whose source contains this token kill the worker
  /// process (`_exit`) between accept and reply, simulating a mid-request
  /// crash for the fleet soak.  Wired from BIV_SERVE_CRASH_TOKEN; never
  /// set in production paths.
  std::string CrashToken;
  /// Test-only: runs on the worker just before each analyze request's
  /// pipeline, letting tests hold workers to fill the admission queue
  /// deterministically.  Never set in production paths.
  std::function<void(const Request &)> TestHookBeforeAnalyze;
};

class Server {
public:
  /// Binds to nothing yet; start() does the socket work.
  Server(std::string SocketPath, ServerOptions Opts = ServerOptions());
  /// Stops accepting, drains, and cleans up if the caller never did.
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Opens the cache (if configured), binds + listens on the socket path
  /// (an existing stale socket file is replaced), and spawns the accept
  /// loop.  False with \p Error set on any failure.
  bool start(std::string &Error);

  /// Initiates drain: stop accepting, finish every admitted request.
  /// Async-signal-safe (one write to a pipe) -- this is the SIGTERM hook.
  /// Idempotent.
  void requestShutdown();

  /// Blocks until the accept loop exits and all admitted requests are
  /// answered, then saves the cache.  Returns false with \p Error set when
  /// the cache cannot be persisted (the daemon's exit status must not claim
  /// warm runs it silently threw away).
  bool drain(std::string &Error);

  /// Blocks the calling thread until a shutdown has been requested (via
  /// signal or requestShutdown()) and the accept loop has exited; the
  /// caller then runs drain() to finish in-flight work and clean up.  This
  /// is the daemon main loop's "sleep until SIGTERM".
  void waitForShutdown();

  /// Installs SIGTERM + SIGINT handlers that requestShutdown() this
  /// instance.  Call at most once, from the thread that owns the server.
  void installSignalHandlers();

  /// Merged server-lifetime stats: every finished request's frame delta
  /// plus the accept loop's own counters.  Safe to call concurrently with
  /// serving (this is what the Stats request kind returns as JSON).
  stats::StatsSnapshot statsSnapshot() const;

  const std::string &socketPath() const { return SocketPath; }
  size_t admitted() const { return Admitted.load(); }
  /// The bound TCP port when a TcpSpec was given (resolves port 0 to the
  /// kernel's pick); 0 when there is no TCP frontend.
  int tcpPort() const { return TcpListenPort; }

private:
  void acceptLoop();
  /// Reads and dispatches one connection on the accept thread; \p Base is
  /// the accept thread's stats-fold cursor (folded before any reply this
  /// thread sends itself).
  void handleConnection(int Fd, stats::Frame &Base);
  void serveAnalyze(int Fd, Request Q,
                    std::chrono::steady_clock::time_point Accepted);
  Response analyze(const Request &Q);
  void reply(int Fd, const Response &R);
  /// Folds the calling thread's frame progress since \p Base into the
  /// server-lifetime frame and advances \p Base.
  void mergeThreadDelta(stats::Frame &Base);

  std::string SocketPath;
  ServerOptions Opts;

  /// All listening sockets (unix, maybe TCP, or the fleet's adopted fds);
  /// the accept loop polls them all.
  std::vector<int> ListenFds;
  /// Whether we bound the unix socket ourselves (and so must unlink its
  /// file at drain); false in fleet-worker mode.
  bool OwnSocketFile = false;
  int TcpListenPort = 0;
  int WakeFd[2] = {-1, -1}; ///< self-pipe: [0] polled, [1] written by
                            ///< requestShutdown / signal handler
  std::thread AcceptThread;
  std::unique_ptr<driver::ThreadPool> Pool;

  cache::AnalysisCache Cache;
  bool HaveCache = false;
  /// Serializes mid-flight cache flushes (try-lock: a worker that finds a
  /// flush already running just skips -- the cadence is advisory).
  std::mutex FlushM;

  std::atomic<size_t> Admitted{0}; ///< analyze requests queued + running
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> Drained{false};

  /// Server-lifetime stats frame; every thread folds its deltas in here.
  mutable std::mutex StatsM;
  stats::Frame Lifetime;
};

} // namespace server
} // namespace biv

#endif // BEYONDIV_SERVER_SERVER_H
