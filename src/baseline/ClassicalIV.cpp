//===- baseline/ClassicalIV.cpp - Classical IV detection -----------------------===//

#include "baseline/ClassicalIV.h"

using namespace biv;
using namespace biv::baseline;

namespace {

bool isInvariantIn(const ir::Value *V, const analysis::Loop &L) {
  if (ir::isa<ir::Constant>(V) || ir::isa<ir::Argument>(V))
    return true;
  if (const auto *I = ir::dyn_cast<ir::Instruction>(V))
    return !L.contains(I->parent());
  return false;
}

/// Affine view of an invariant operand (constants fold, anything else is an
/// opaque symbol).
Affine invariantAffine(const ir::Value *V) {
  if (const auto *C = ir::dyn_cast<ir::Constant>(V))
    return Affine(C->value());
  return Affine::symbol(V);
}

/// Checks the basic-IV pattern for a header phi: every cycle through the
/// carried value is a chain of +/- invariant steps back to the phi.  The
/// classical formulation ("i appears only in statements i = i + k") maps to
/// exactly this shape on SSA form, conditional paths included when every
/// path adds the same net amount.
bool chaseBasic(const ir::Instruction *Phi, const ir::Value *V,
                const analysis::Loop &L, Affine Step, Affine &NetStep,
                bool &StepKnown, unsigned Depth) {
  if (Depth == 0)
    return false;
  if (V == Phi) {
    if (StepKnown && !(NetStep == Step))
      return false;
    NetStep = Step;
    StepKnown = true;
    return true;
  }
  const auto *I = ir::dyn_cast<ir::Instruction>(V);
  if (!I || !L.contains(I->parent()))
    return false;
  switch (I->opcode()) {
  case ir::Opcode::Add:
    if (isInvariantIn(I->operand(1), L))
      return chaseBasic(Phi, I->operand(0), L,
                        Step + invariantAffine(I->operand(1)), NetStep,
                        StepKnown, Depth - 1);
    if (isInvariantIn(I->operand(0), L))
      return chaseBasic(Phi, I->operand(1), L,
                        Step + invariantAffine(I->operand(0)), NetStep,
                        StepKnown, Depth - 1);
    return false;
  case ir::Opcode::Sub:
    if (isInvariantIn(I->operand(1), L))
      return chaseBasic(Phi, I->operand(0), L,
                        Step - invariantAffine(I->operand(1)), NetStep,
                        StepKnown, Depth - 1);
    return false;
  case ir::Opcode::Copy:
    return chaseBasic(Phi, I->operand(0), L, Step, NetStep, StepKnown,
                      Depth - 1);
  case ir::Opcode::Phi: {
    // Conditional increment: all incoming paths must reach the base phi
    // with the same accumulated step.
    for (const ir::Value *Op : I->operands())
      if (!chaseBasic(Phi, Op, L, Step, NetStep, StepKnown, Depth - 1))
        return false;
    return I->numOperands() > 0;
  }
  default:
    return false;
  }
}

} // namespace

ClassicalResult biv::baseline::runClassicalIV(const analysis::Loop &L) {
  ClassicalResult R;

  // Phase 1: basic induction variables from the header phis.
  for (ir::Instruction *Phi : L.header()->phis()) {
    const ir::Value *Carried = nullptr;
    bool Multi = false;
    for (unsigned I = 0; I < Phi->numOperands(); ++I) {
      if (!L.contains(Phi->blocks()[I]))
        continue;
      if (Carried)
        Multi = true;
      Carried = Phi->operand(I);
    }
    if (!Carried || Multi)
      continue;
    Affine NetStep;
    bool StepKnown = false;
    if (!chaseBasic(Phi, Carried, L, Affine(), NetStep, StepKnown, 64) ||
        !StepKnown || NetStep.isZero())
      continue;
    LinearIV IV;
    IV.Base = Phi;
    IV.IsBasic = true;
    R.IVs[Phi] = IV;
    ++R.BasicIVs;
  }

  // Phase 2: iterate to a fixed point adding derived IVs j = b*i + c.  This
  // sweep-until-stable loop is the classical algorithm's hallmark (and its
  // cost); the paper's SSA/SCR algorithm needs a single pass instead.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Passes;
    for (ir::BasicBlock *BB : L.blocks())
      for (const ir::Instruction *I : *BB) {
        if (R.IVs.count(I))
          continue;
        auto derive = [&](const ir::Value *IVOp, const ir::Value *InvOp,
                          auto &&Fn) -> bool {
          auto It = R.IVs.find(IVOp);
          if (It == R.IVs.end() || !isInvariantIn(InvOp, L))
            return false;
          LinearIV New = It->second;
          New.IsBasic = false;
          if (!Fn(New, invariantAffine(InvOp)))
            return false;
          R.IVs[I] = std::move(New);
          ++R.DerivedIVs;
          Changed = true;
          return true;
        };
        switch (I->opcode()) {
        case ir::Opcode::Add: {
          auto AddFn = [](LinearIV &IV, const Affine &C) {
            IV.Offset += C;
            return true;
          };
          if (!derive(I->operand(0), I->operand(1), AddFn))
            derive(I->operand(1), I->operand(0), AddFn);
          break;
        }
        case ir::Opcode::Sub: {
          if (!derive(I->operand(0), I->operand(1),
                      [](LinearIV &IV, const Affine &C) {
                        IV.Offset -= C;
                        return true;
                      })) {
            // c - i: negate scale and offset.
            derive(I->operand(1), I->operand(0),
                   [](LinearIV &IV, const Affine &C) {
                     IV.Scale = -IV.Scale;
                     IV.Offset = C - IV.Offset;
                     return true;
                   });
          }
          break;
        }
        case ir::Opcode::Mul: {
          auto MulFn = [](LinearIV &IV, const Affine &C) {
            std::optional<Affine> S = Affine::mul(IV.Scale, C);
            std::optional<Affine> O = Affine::mul(IV.Offset, C);
            if (!S || !O)
              return false;
            IV.Scale = *S;
            IV.Offset = *O;
            return true;
          };
          if (!derive(I->operand(0), I->operand(1), MulFn))
            derive(I->operand(1), I->operand(0), MulFn);
          break;
        }
        case ir::Opcode::Neg: {
          auto It = R.IVs.find(I->operand(0));
          if (It != R.IVs.end()) {
            LinearIV New = It->second;
            New.IsBasic = false;
            New.Scale = -New.Scale;
            New.Offset = -New.Offset;
            R.IVs[I] = std::move(New);
            ++R.DerivedIVs;
            Changed = true;
          }
          break;
        }
        case ir::Opcode::Copy: {
          auto It = R.IVs.find(I->operand(0));
          if (It != R.IVs.end()) {
            R.IVs[I] = It->second;
            ++R.DerivedIVs;
            Changed = true;
          }
          break;
        }
        default:
          break;
        }
      }
  }
  return R;
}
