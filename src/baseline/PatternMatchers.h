//===- baseline/PatternMatchers.h - Ad-hoc recognizers ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ad-hoc pattern recognizers the paper says current (1992) compilers
/// bolt on after classical IV analysis: a wrap-around matcher ("typically,
/// wrap-around variables are found with a separate pattern matching
/// analysis of the loops, following induction variable analysis" [PW86])
/// and a flip-flop matcher for `j = c - j`.  Used as the coverage/speed
/// baseline against the unified algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_BASELINE_PATTERNMATCHERS_H
#define BEYONDIV_BASELINE_PATTERNMATCHERS_H

#include "baseline/ClassicalIV.h"

namespace biv {
namespace baseline {

/// What the ad-hoc matchers recognized in one loop.
struct AdHocResult {
  unsigned WrapArounds = 0; ///< First-order only, like typical matchers.
  unsigned FlipFlops = 0;   ///< j = c - j patterns.
};

/// Runs both matchers on \p L, given classical IV results for the loop.
AdHocResult runAdHocMatchers(const analysis::Loop &L,
                             const ClassicalResult &IVs);

} // namespace baseline
} // namespace biv

#endif // BEYONDIV_BASELINE_PATTERNMATCHERS_H
