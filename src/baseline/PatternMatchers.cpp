//===- baseline/PatternMatchers.cpp - Ad-hoc recognizers -----------------------===//

#include "baseline/PatternMatchers.h"

using namespace biv;
using namespace biv::baseline;

AdHocResult biv::baseline::runAdHocMatchers(const analysis::Loop &L,
                                            const ClassicalResult &IVs) {
  AdHocResult R;

  // Wrap-around matcher: a header phi that is not itself an IV but whose
  // carried value is a (classical) IV.  First order only -- cascaded
  // wrap-arounds (Figure 4's k2) are beyond typical matchers.
  for (ir::Instruction *Phi : L.header()->phis()) {
    if (IVs.isIV(Phi))
      continue;
    for (unsigned I = 0; I < Phi->numOperands(); ++I) {
      if (!L.contains(Phi->blocks()[I]))
        continue;
      if (IVs.isIV(Phi->operand(I)))
        ++R.WrapArounds;
    }
  }

  // Flip-flop matcher: header phi whose carried value is `c - phi` with c
  // invariant (the paper's loop L12 form).
  for (ir::Instruction *Phi : L.header()->phis())
    for (unsigned I = 0; I < Phi->numOperands(); ++I) {
      if (!L.contains(Phi->blocks()[I]))
        continue;
      const auto *Sub = ir::dyn_cast<ir::Instruction>(Phi->operand(I));
      if (!Sub || Sub->opcode() != ir::Opcode::Sub ||
          Sub->operand(1) != Phi)
        continue;
      const ir::Value *C = Sub->operand(0);
      bool Invariant = ir::isa<ir::Constant>(C) || ir::isa<ir::Argument>(C);
      if (const auto *CI = ir::dyn_cast<ir::Instruction>(C))
        Invariant = !L.contains(CI->parent());
      if (Invariant)
        ++R.FlipFlops;
    }
  return R;
}
