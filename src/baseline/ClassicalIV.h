//===- baseline/ClassicalIV.h - Classical IV detection ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical (pre-SSA-era) induction variable algorithm, in the style
/// of [ASU86] and Cocke/Kennedy [CK77, ACK81], as a baseline: first find
/// *basic* induction variables (variables incremented by a loop-invariant
/// amount on every path), then iterate to a fixed point adding *derived*
/// variables of the form j = b*i + c with b, c invariant.
///
/// This is what the paper's unified SSA algorithm replaces: it is iterative
/// (the pass count is reported so the benchmarks can show it), finds only
/// linear variables, and needs the separate ad-hoc matchers of
/// PatternMatchers.h for everything else.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_BASELINE_CLASSICALIV_H
#define BEYONDIV_BASELINE_CLASSICALIV_H

#include "analysis/LoopInfo.h"
#include "support/Affine.h"
#include <map>

namespace biv {
namespace baseline {

/// A classical linear induction variable: Scale * Base + Offset, with Base
/// a basic IV (identified by its loop-header phi).
struct LinearIV {
  const ir::Instruction *Base = nullptr;
  Affine Scale{Rational(1)};
  Affine Offset;
  bool IsBasic = false;
};

/// Result of the classical algorithm on one loop.
struct ClassicalResult {
  std::map<const ir::Value *, LinearIV> IVs;
  unsigned BasicIVs = 0;
  unsigned DerivedIVs = 0;
  /// Number of sweeps over the loop body until the fixed point.
  unsigned Passes = 0;

  bool isIV(const ir::Value *V) const { return IVs.count(V) != 0; }
};

/// Runs the classical algorithm on \p L (SSA form; the header phis play the
/// role of the classical "variables").
ClassicalResult runClassicalIV(const analysis::Loop &L);

} // namespace baseline
} // namespace biv

#endif // BEYONDIV_BASELINE_CLASSICALIV_H
